"""Activation functions with closed-form first and second derivatives.

The physics-informed loss needs the Laplacian of the trunk net with respect
to the spatial coordinates.  :mod:`repro.nn.taylor` propagates value /
gradient / diagonal-Hessian streams through each layer, which requires
sigma, sigma' and sigma'' for every activation.  Each is expressed with
:mod:`repro.autodiff` ops, so parameter gradients flow through all three.

The paper uses Swish (Ramachandran et al., 2017) and reports it beats Tanh
and Sine in their PINN setting; all three are provided so the ablation bench
can reproduce that comparison.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .. import autodiff as ad
from ..autodiff import Tensor


class Activation:
    """Interface: ``value``, ``first`` and ``second`` derivative at ``x``.

    ``array`` is the tape-free twin of ``value``: it maps a plain ndarray
    to a plain ndarray without constructing any :class:`Tensor`, for the
    compiled inference path (:mod:`repro.engine`).
    """

    name = "base"

    def value(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def array(self, x: np.ndarray) -> np.ndarray:
        """Pure-NumPy value (no autodiff graph); must match ``value``."""
        raise NotImplementedError

    def first(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def second(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.value(x)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Swish(Activation):
    """swish(x) = x * sigmoid(x), the paper's activation of choice."""

    name = "swish"

    def value(self, x: Tensor) -> Tensor:
        return x * ad.sigmoid(x)

    def array(self, x: np.ndarray) -> np.ndarray:
        return x * (1.0 / (1.0 + np.exp(-x)))

    def first(self, x: Tensor) -> Tensor:
        s = ad.sigmoid(x)
        return s + x * s * (1.0 - s)

    def second(self, x: Tensor) -> Tensor:
        s = ad.sigmoid(x)
        s_prime = s * (1.0 - s)
        return s_prime * (2.0 + x * (1.0 - 2.0 * s))


class Tanh(Activation):
    name = "tanh"

    def value(self, x: Tensor) -> Tensor:
        return ad.tanh(x)

    def array(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def first(self, x: Tensor) -> Tensor:
        t = ad.tanh(x)
        return 1.0 - t * t

    def second(self, x: Tensor) -> Tensor:
        t = ad.tanh(x)
        return -2.0 * t * (1.0 - t * t)


class Sine(Activation):
    """sin activation (SIREN-style), one of the paper's compared PINN picks."""

    name = "sine"

    def __init__(self, frequency: float = 1.0):
        self.frequency = float(frequency)

    def value(self, x: Tensor) -> Tensor:
        return ad.sin(self.frequency * x)

    def array(self, x: np.ndarray) -> np.ndarray:
        return np.sin(self.frequency * x)

    def first(self, x: Tensor) -> Tensor:
        return self.frequency * ad.cos(self.frequency * x)

    def second(self, x: Tensor) -> Tensor:
        return -(self.frequency**2) * ad.sin(self.frequency * x)


class Relu(Activation):
    """ReLU — second derivative is zero a.e.; unsuited for PDE residuals
    (and therefore a useful negative control in tests)."""

    name = "relu"

    def value(self, x: Tensor) -> Tensor:
        return ad.relu(x)

    def array(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def first(self, x: Tensor) -> Tensor:
        return ad.where(x.data > 0.0, ad.ones_like(x), ad.zeros_like(x))

    def second(self, x: Tensor) -> Tensor:
        return ad.zeros_like(x)


class Gelu(Activation):
    """GELU with the tanh approximation."""

    name = "gelu"
    _C = 0.7978845608028654  # sqrt(2/pi)
    _A = 0.044715

    def _inner(self, x: Tensor) -> Tensor:
        return self._C * (x + self._A * x * x * x)

    def value(self, x: Tensor) -> Tensor:
        return 0.5 * x * (1.0 + ad.tanh(self._inner(x)))

    def array(self, x: np.ndarray) -> np.ndarray:
        return 0.5 * x * (1.0 + np.tanh(self._C * (x + self._A * x * x * x)))

    def first(self, x: Tensor) -> Tensor:
        u = self._inner(x)
        t = ad.tanh(u)
        u1 = self._C * (1.0 + 3.0 * self._A * x * x)
        return 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * u1

    def second(self, x: Tensor) -> Tensor:
        u = self._inner(x)
        t = ad.tanh(u)
        t1 = 1.0 - t * t
        t2 = -2.0 * t * t1
        u1 = self._C * (1.0 + 3.0 * self._A * x * x)
        u2 = 6.0 * self._C * self._A * x
        return t1 * u1 + 0.5 * x * (t2 * u1 * u1 + t1 * u2)


class Identity(Activation):
    name = "identity"

    def value(self, x: Tensor) -> Tensor:
        return x

    def array(self, x: np.ndarray) -> np.ndarray:
        return x

    def first(self, x: Tensor) -> Tensor:
        return ad.ones_like(x)

    def second(self, x: Tensor) -> Tensor:
        return ad.zeros_like(x)


_REGISTRY: Dict[str, type] = {
    "swish": Swish,
    "tanh": Tanh,
    "sine": Sine,
    "sin": Sine,
    "relu": Relu,
    "gelu": Gelu,
    "identity": Identity,
    "linear": Identity,
}


def get_activation(spec) -> Activation:
    """Resolve an activation from a name or pass an instance through."""
    if isinstance(spec, Activation):
        return spec
    try:
        return _REGISTRY[spec]()
    except KeyError:
        raise KeyError(
            f"unknown activation {spec!r}; available: {sorted(_REGISTRY)}"
        ) from None
