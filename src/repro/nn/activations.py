"""Activation functions with closed-form first and second derivatives.

The physics-informed loss needs the Laplacian of the trunk net with respect
to the spatial coordinates.  :mod:`repro.nn.taylor` propagates value /
gradient / diagonal-Hessian streams through each layer, which requires
sigma, sigma' and sigma'' for every activation.  Each is expressed with
:mod:`repro.autodiff` ops, so parameter gradients flow through all three.

The paper uses Swish (Ramachandran et al., 2017) and reports it beats Tanh
and Sine in their PINN setting; all three are provided so the ablation bench
can reproduce that comparison.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .. import autodiff as ad
from ..autodiff import Tensor


class Activation:
    """Interface: ``value``, ``first`` and ``second`` derivative at ``x``.

    ``array`` is the tape-free twin of ``value``: it maps a plain ndarray
    to a plain ndarray without constructing any :class:`Tensor`, for the
    compiled inference path (:mod:`repro.engine`).
    """

    name = "base"

    def value(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def array(self, x: np.ndarray) -> np.ndarray:
        """Pure-NumPy value (no autodiff graph); must match ``value``."""
        raise NotImplementedError

    def first(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def second(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def taylor(self, x: Tensor) -> "Tuple[Tensor, Tensor, Tensor]":
        """``(value, first, second)`` with shared subexpressions.

        The stacked second-order propagation needs all three at once;
        evaluating them together lets an activation compute its expensive
        inner transcendental (sigmoid, tanh, ...) a single time instead
        of once per stream.  The default simply delegates.
        """
        return self.value(x), self.first(x), self.second(x)

    def array_taylor3(self, x: np.ndarray):
        """``(value, first, second, third)`` as plain ndarrays, or None.

        The fused stacked-activation training kernel needs sigma through
        its *third* derivative: the forward pass propagates (sigma,
        sigma', sigma'') and the hand-written VJP differentiates them one
        more order.  Activations that return None here (no closed-form
        third derivative implemented) fall back to the composed
        tape-level stacked propagation, which needs only ``taylor``.
        """
        return None

    def __call__(self, x: Tensor) -> Tensor:
        return self.value(x)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Swish(Activation):
    """swish(x) = x * sigmoid(x), the paper's activation of choice."""

    name = "swish"

    def value(self, x: Tensor) -> Tensor:
        return x * ad.sigmoid(x)

    def array(self, x: np.ndarray) -> np.ndarray:
        return x * (1.0 / (1.0 + np.exp(-x)))

    def first(self, x: Tensor) -> Tensor:
        s = ad.sigmoid(x)
        return s + x * s * (1.0 - s)

    def second(self, x: Tensor) -> Tensor:
        s = ad.sigmoid(x)
        s_prime = s * (1.0 - s)
        return s_prime * (2.0 + x * (1.0 - 2.0 * s))

    def array_taylor3(self, x: np.ndarray):
        # In-place formulation: the stacked training kernel calls this on
        # every activation layer, so each avoided temporary is a full
        # (n, width) pass saved.
        s = np.exp(-x)
        s += 1.0
        np.divide(1.0, s, out=s)               # s = sigmoid(x)
        u = 1.0 - s                             # 1 - s
        sp = s * u                              # sigma of the sigmoid
        u -= s                                  # u = 1 - 2 s
        value = x * s
        first = x * sp
        first += s                              # s + x sp
        second = x * u
        second += 2.0                           # 2 + x u
        second *= sp
        third = u * u
        third *= x                              # x u^2
        tmp = x * sp
        tmp *= 2.0
        third -= tmp                            # x u^2 - 2 x sp
        np.multiply(u, 3.0, out=tmp)
        third += tmp                            # 3 u + x u^2 - 2 x sp
        third *= sp
        return value, first, second, third


class Tanh(Activation):
    name = "tanh"

    def value(self, x: Tensor) -> Tensor:
        return ad.tanh(x)

    def array(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def first(self, x: Tensor) -> Tensor:
        t = ad.tanh(x)
        return 1.0 - t * t

    def second(self, x: Tensor) -> Tensor:
        t = ad.tanh(x)
        return -2.0 * t * (1.0 - t * t)

    def array_taylor3(self, x: np.ndarray):
        t = np.tanh(x)
        first = 1.0 - t * t
        return t, first, -2.0 * t * first, first * (6.0 * t * t - 2.0)


class Sine(Activation):
    """sin activation (SIREN-style), one of the paper's compared PINN picks."""

    name = "sine"

    def __init__(self, frequency: float = 1.0):
        self.frequency = float(frequency)

    def value(self, x: Tensor) -> Tensor:
        return ad.sin(self.frequency * x)

    def array(self, x: np.ndarray) -> np.ndarray:
        return np.sin(self.frequency * x)

    def first(self, x: Tensor) -> Tensor:
        return self.frequency * ad.cos(self.frequency * x)

    def second(self, x: Tensor) -> Tensor:
        return -(self.frequency**2) * ad.sin(self.frequency * x)

    def array_taylor3(self, x: np.ndarray):
        f = self.frequency
        angle = f * x
        s, c = np.sin(angle), np.cos(angle)
        return s, f * c, -(f**2) * s, -(f**3) * c


class Relu(Activation):
    """ReLU — second derivative is zero a.e.; unsuited for PDE residuals
    (and therefore a useful negative control in tests)."""

    name = "relu"

    def value(self, x: Tensor) -> Tensor:
        return ad.relu(x)

    def array(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def first(self, x: Tensor) -> Tensor:
        return ad.where(x.data > 0.0, ad.ones_like(x), ad.zeros_like(x))

    def second(self, x: Tensor) -> Tensor:
        return ad.zeros_like(x)

    def array_taylor3(self, x: np.ndarray):
        first = (x > 0.0).astype(np.float64)
        zero = np.zeros_like(x)
        return np.maximum(x, 0.0), first, zero, zero


class Gelu(Activation):
    """GELU with the tanh approximation."""

    name = "gelu"
    _C = 0.7978845608028654  # sqrt(2/pi)
    _A = 0.044715

    def _inner(self, x: Tensor) -> Tensor:
        return self._C * (x + self._A * x * x * x)

    def value(self, x: Tensor) -> Tensor:
        return 0.5 * x * (1.0 + ad.tanh(self._inner(x)))

    def array(self, x: np.ndarray) -> np.ndarray:
        return 0.5 * x * (1.0 + np.tanh(self._C * (x + self._A * x * x * x)))

    def first(self, x: Tensor) -> Tensor:
        u = self._inner(x)
        t = ad.tanh(u)
        u1 = self._C * (1.0 + 3.0 * self._A * x * x)
        return 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * u1

    def second(self, x: Tensor) -> Tensor:
        u = self._inner(x)
        t = ad.tanh(u)
        t1 = 1.0 - t * t
        t2 = -2.0 * t * t1
        u1 = self._C * (1.0 + 3.0 * self._A * x * x)
        u2 = 6.0 * self._C * self._A * x
        return t1 * u1 + 0.5 * x * (t2 * u1 * u1 + t1 * u2)

    def array_taylor3(self, x: np.ndarray):
        u1 = self._C * (1.0 + 3.0 * self._A * x * x)
        u2 = 6.0 * self._C * self._A * x
        u3 = 6.0 * self._C * self._A
        t = np.tanh(self._C * (x + self._A * x * x * x))
        one_minus_t2 = 1.0 - t * t
        # Chain rule through t = tanh(u(x)):
        t_1 = one_minus_t2 * u1
        t_2 = one_minus_t2 * u2 - 2.0 * t * one_minus_t2 * u1 * u1
        t_3 = (
            one_minus_t2 * u3
            - 6.0 * t * one_minus_t2 * u1 * u2
            - 2.0 * one_minus_t2 * one_minus_t2 * u1**3
            + 4.0 * t * t * one_minus_t2 * u1**3
        )
        value = 0.5 * x * (1.0 + t)
        first = 0.5 * (1.0 + t) + 0.5 * x * t_1
        second = t_1 + 0.5 * x * t_2
        third = 1.5 * t_2 + 0.5 * x * t_3
        return value, first, second, third


class Identity(Activation):
    name = "identity"

    def value(self, x: Tensor) -> Tensor:
        return x

    def array(self, x: np.ndarray) -> np.ndarray:
        return x

    def first(self, x: Tensor) -> Tensor:
        return ad.ones_like(x)

    def second(self, x: Tensor) -> Tensor:
        return ad.zeros_like(x)

    def array_taylor3(self, x: np.ndarray):
        zero = np.zeros_like(x)
        return x, np.ones_like(x), zero, zero


_REGISTRY: Dict[str, type] = {
    "swish": Swish,
    "tanh": Tanh,
    "sine": Sine,
    "sin": Sine,
    "relu": Relu,
    "gelu": Gelu,
    "identity": Identity,
    "linear": Identity,
}


def activation_names():
    """Sorted activation names resolvable by :func:`get_activation`."""
    return sorted(_REGISTRY)


def get_activation(spec) -> Activation:
    """Resolve an activation from a name or pass an instance through."""
    if isinstance(spec, Activation):
        return spec
    try:
        return _REGISTRY[spec]()
    except KeyError:
        raise KeyError(
            f"unknown activation {spec!r}; available: {sorted(_REGISTRY)}"
        ) from None
