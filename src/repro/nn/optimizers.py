"""First-order optimizers (the PyTorch-optim substitute).

The paper trains with Adam at 1e-3, decayed 0.9x every 500 iterations; the
schedule lives in :mod:`repro.nn.schedules` and is applied by assigning
``optimizer.lr`` before each step (or by the trainer).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..autodiff import Tensor

GradLike = Union[Tensor, np.ndarray]


class Optimizer:
    """Base class: holds parameters and applies in-place updates."""

    def __init__(self, params: Sequence[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.step_count = 0

    def _resolve_grads(self, grads: Optional[Sequence[GradLike]]) -> List[np.ndarray]:
        if grads is None:
            missing = [i for i, p in enumerate(self.params) if p.grad is None]
            if missing:
                raise ValueError(
                    f"parameters {missing} have no .grad; run backward() or pass grads"
                )
            return [p.grad.data for p in self.params]
        if len(grads) != len(self.params):
            raise ValueError(
                f"got {len(grads)} grads for {len(self.params)} parameters"
            )
        # np.asarray passes ndarrays through untouched, so this stays
        # allocation-free for the hot path's Tensor/ndarray inputs.
        return [g.data if isinstance(g, Tensor) else np.asarray(g) for g in grads]

    def step(self, grads: Optional[Sequence[GradLike]] = None) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: Sequence[Tensor], lr: float = 1e-3, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self, grads: Optional[Sequence[GradLike]] = None) -> None:
        resolved = self._resolve_grads(grads)
        self.step_count += 1
        for param, grad, velocity in zip(self.params, resolved, self._velocity):
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction and optional weight decay.

    ``weight_decay`` is decoupled (AdamW-style) so that L2 regularisation
    does not interact with the adaptive scaling.
    """

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # One scratch buffer per parameter makes step() allocation-free.
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self, grads: Optional[Sequence[GradLike]] = None) -> None:
        """Fully in-place update: every array op writes into the moment
        buffers, the per-parameter scratch, or the parameter itself, and
        the bias corrections are folded into a single fused scale."""
        resolved = self._resolve_grads(grads)
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        step_scale = self.lr / bias1
        decay_scale = 1.0 - self.lr * self.weight_decay
        for param, grad, m, v, buf in zip(
            self.params, resolved, self._m, self._v, self._scratch
        ):
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1.0 - self.beta1, out=buf)
            np.add(m, buf, out=m)
            np.multiply(v, self.beta2, out=v)
            np.multiply(grad, grad, out=buf)
            np.multiply(buf, 1.0 - self.beta2, out=buf)
            np.add(v, buf, out=v)
            # buf <- lr/bias1 * m / (sqrt(v / bias2) + eps)
            np.divide(v, bias2, out=buf)
            np.sqrt(buf, out=buf)
            buf += self.eps
            np.divide(m, buf, out=buf)
            np.multiply(buf, step_scale, out=buf)
            if self.weight_decay > 0.0:
                np.multiply(param.data, decay_scale, out=param.data)
            np.subtract(param.data, buf, out=param.data)


def clip_grad_norm(grads: Sequence[GradLike], max_norm: float) -> List[np.ndarray]:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    The scaling happens **in place** on the gradient arrays (which the
    training loop produces fresh every iteration), so the hot path does
    no allocation beyond the returned list; the norm itself is a flat dot
    product per array rather than a squared temporary.  Entries that may
    share memory with an earlier entry (identical objects, aliasing
    views) are replaced by copies before scaling, so no buffer is ever
    scaled twice regardless of how the gradients were produced.
    """
    arrays = [g.data if isinstance(g, Tensor) else np.asarray(g) for g in grads]
    total = float(
        np.sqrt(sum(float(np.dot(a.reshape(-1), a.reshape(-1))) for a in arrays))
    )
    if total <= max_norm or total == 0.0:
        return arrays
    scale = max_norm / total
    cleaned: List[np.ndarray] = []
    for a in arrays:
        if not a.flags.writeable or any(
            np.may_share_memory(a, b) for b in cleaned
        ):
            a = a.copy()
        cleaned.append(a)
    for a in cleaned:
        np.multiply(a, scale, out=a)
    return cleaned


class LBFGS(Optimizer):
    """Limited-memory BFGS with two-loop recursion and backtracking line
    search.

    PINN practice commonly refines an Adam-trained model with (L-)BFGS;
    this implementation targets that fine-tuning role.  Unlike the
    first-order optimizers it needs a closure that re-evaluates the loss
    and gradients, because the line search probes multiple points per step.
    """

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1.0,
        history: int = 10,
        max_line_search: int = 12,
        curvature_eps: float = 1e-10,
    ):
        super().__init__(params, lr)
        if history < 1:
            raise ValueError("history size must be >= 1")
        self.history = int(history)
        self.max_line_search = int(max_line_search)
        self.curvature_eps = float(curvature_eps)
        self._s: List[np.ndarray] = []
        self._y: List[np.ndarray] = []
        self._rho: List[float] = []
        self._last_grad: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _flatten(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        return np.concatenate([a.reshape(-1) for a in arrays])

    def _assign(self, flat: np.ndarray) -> None:
        offset = 0
        for param in self.params:
            size = param.data.size
            param.data[...] = flat[offset : offset + size].reshape(param.shape)
            offset += size

    def _direction(self, grad: np.ndarray) -> np.ndarray:
        """Two-loop recursion for H^{-1} g."""
        q = grad.copy()
        alphas = []
        for s, y, rho in zip(reversed(self._s), reversed(self._y),
                             reversed(self._rho)):
            alpha = rho * np.dot(s, q)
            alphas.append(alpha)
            q -= alpha * y
        if self._s:
            gamma = np.dot(self._s[-1], self._y[-1]) / max(
                np.dot(self._y[-1], self._y[-1]), 1e-300
            )
            q *= gamma
        for (s, y, rho), alpha in zip(
            zip(self._s, self._y, self._rho), reversed(alphas)
        ):
            beta = rho * np.dot(y, q)
            q += (alpha - beta) * s
        return -q

    # ------------------------------------------------------------------
    def step_closure(self, closure) -> float:
        """One quasi-Newton step.

        ``closure()`` must return ``(loss_value: float, grads: list)`` at
        the *current* parameter values.
        """
        loss, grads = closure()
        grad_flat = self._flatten(self._resolve_grads(grads))
        x0 = self._flatten([p.data for p in self.params])

        direction = self._direction(grad_flat)
        derivative = float(np.dot(grad_flat, direction))
        if derivative >= 0.0:  # not a descent direction: reset memory
            self._s.clear()
            self._y.clear()
            self._rho.clear()
            direction = -grad_flat
            derivative = float(np.dot(grad_flat, direction))

        # Backtracking Armijo line search.
        step = self.lr
        accepted_loss = loss
        for _ in range(self.max_line_search):
            self._assign(x0 + step * direction)
            trial_loss, trial_grads = closure()
            if trial_loss <= loss + 1e-4 * step * derivative:
                accepted_loss = trial_loss
                new_grad = self._flatten(self._resolve_grads(trial_grads))
                s_vec = step * direction
                y_vec = new_grad - grad_flat
                curvature = float(np.dot(s_vec, y_vec))
                if curvature > self.curvature_eps:
                    self._s.append(s_vec)
                    self._y.append(y_vec)
                    self._rho.append(1.0 / curvature)
                    if len(self._s) > self.history:
                        self._s.pop(0)
                        self._y.pop(0)
                        self._rho.pop(0)
                break
            step *= 0.5
        else:
            self._assign(x0)  # line search failed: keep the old iterate
            accepted_loss = loss
        self.step_count += 1
        return accepted_loss

    def step(self, grads: Optional[Sequence[GradLike]] = None) -> None:
        raise RuntimeError(
            "LBFGS needs a closure; call step_closure(closure) instead"
        )
