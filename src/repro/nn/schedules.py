"""Learning-rate schedules.

The paper's training recipe: initial LR 1e-3, decayed by 0.9x every 500
iterations (staircase exponential decay).
"""

from __future__ import annotations

import numpy as np


class Schedule:
    """Maps an iteration index to a learning rate."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(Schedule):
    def __init__(self, lr: float):
        self.lr = float(lr)

    def __call__(self, step: int) -> float:
        return self.lr


class ExponentialDecay(Schedule):
    """``lr = initial * rate ** (step / every)``; staircase floors the exponent.

    ``ExponentialDecay(1e-3, 0.9, 500)`` is the paper's schedule.
    """

    def __init__(self, initial: float, rate: float, every: int, staircase: bool = True):
        if every <= 0:
            raise ValueError("decay interval must be positive")
        self.initial = float(initial)
        self.rate = float(rate)
        self.every = int(every)
        self.staircase = staircase

    def __call__(self, step: int) -> float:
        exponent = step / self.every
        if self.staircase:
            exponent = np.floor(exponent)
        return self.initial * self.rate**exponent


class StepLR(Schedule):
    """Piecewise-constant schedule over explicit boundaries."""

    def __init__(self, boundaries, values):
        if len(values) != len(boundaries) + 1:
            raise ValueError("need len(values) == len(boundaries) + 1")
        self.boundaries = list(boundaries)
        self.values = [float(v) for v in values]

    def __call__(self, step: int) -> float:
        for boundary, value in zip(self.boundaries, self.values):
            if step < boundary:
                return value
        return self.values[-1]


class WarmupCosine(Schedule):
    """Linear warmup followed by cosine decay to ``floor`` — used by the
    ablation benches as an alternative to the paper's staircase schedule."""

    def __init__(self, peak: float, warmup: int, total: int, floor: float = 0.0):
        if total <= warmup:
            raise ValueError("total steps must exceed warmup")
        self.peak = float(peak)
        self.warmup = int(warmup)
        self.total = int(total)
        self.floor = float(floor)

    def __call__(self, step: int) -> float:
        if step < self.warmup:
            return self.peak * (step + 1) / self.warmup
        progress = min(1.0, (step - self.warmup) / (self.total - self.warmup))
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.floor + (self.peak - self.floor) * cosine


def paper_schedule(initial: float = 1e-3, rate: float = 0.9, every: int = 500) -> ExponentialDecay:
    """The exact schedule from the paper's training settings (Sec. V-A.4)."""
    return ExponentialDecay(initial, rate, every, staircase=True)
