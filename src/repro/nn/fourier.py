"""Random Fourier feature mapping (Tancik et al., 2020).

The paper applies this to the first trunk-net layer so the operator can
capture the high-frequency content of 3-D temperature fields.  Experiment A
samples the coefficients from ``N(0, (2*pi)^2)``; Experiment B uses a ``pi``
standard deviation.  The mapping is fixed (non-trainable), matching the
reference implementation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import autodiff as ad
from ..autodiff import Tensor
from .modules import Module


def fourier_fast_forward(
    x: np.ndarray, frequencies: np.ndarray, include_input: bool
) -> np.ndarray:
    """Tape-free Fourier mapping on plain ndarrays.

    Shared by :meth:`FourierFeatures.fast_forward` and the engine's
    :class:`~repro.engine.frozen.FrozenTrunk` so both tape-free paths run
    the same arithmetic.
    """
    x = np.asarray(x, dtype=np.float64)
    angles = x @ frequencies
    parts = [np.sin(angles), np.cos(angles)]
    if include_input:
        parts.append(x)
    return np.concatenate(parts, axis=1)


class FourierFeatures(Module):
    """Map ``x -> [sin(x @ B), cos(x @ B)]`` with fixed Gaussian ``B``.

    Parameters
    ----------
    in_features:
        Input coordinate dimension (3 for volumetric chips).
    n_frequencies:
        Number of random frequencies; output width is ``2 * n_frequencies``.
    std:
        Standard deviation of the Gaussian the frequencies are drawn from
        (the paper uses ``2*pi`` for Experiment A and ``pi`` for B).
    include_input:
        Also pass the raw coordinates through alongside the sinusoids.
        A documented deviation from Tancik et al.'s pure mapping: thermal
        fields are dominated by low-order ramps (the 1-D conduction
        profile), which pure sinusoid features can only approximate with
        high-curvature combinations that the PDE residual then penalises.
        The passthrough restores exact representability of linear modes
        and is essential at small training budgets (see the Fourier
        ablation bench).
    """

    def __init__(
        self,
        in_features: int,
        n_frequencies: int,
        std: float = 2.0 * np.pi,
        rng: Optional[np.random.Generator] = None,
        include_input: bool = True,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.n_frequencies = n_frequencies
        self.std = float(std)
        self.include_input = bool(include_input)
        # Fixed (non-trainable) frequency matrix: requires_grad stays False.
        self.frequencies = ad.tensor(rng.normal(0.0, self.std, size=(in_features, n_frequencies)))

    @property
    def out_features(self) -> int:
        extra = self.in_features if self.include_input else 0
        return 2 * self.n_frequencies + extra

    def forward(self, x: Tensor) -> Tensor:
        angles = x @ self.frequencies
        parts = [ad.sin(angles), ad.cos(angles)]
        if self.include_input:
            parts.append(x)
        return ad.concat(parts, axis=1)

    def fast_forward(self, x: np.ndarray) -> np.ndarray:
        """Tape-free mapping on a plain ndarray; matches :meth:`forward`."""
        return fourier_fast_forward(x, self.frequencies.data, self.include_input)

    def __repr__(self) -> str:
        return (
            f"FourierFeatures(in={self.in_features}, "
            f"n={self.n_frequencies}, std={self.std:.3f}, "
            f"include_input={self.include_input})"
        )
