"""Neural-network library: the deepxde/PyTorch substitute for DeepOHeat."""

from .activations import (
    Activation,
    Gelu,
    Identity,
    Relu,
    Sine,
    Swish,
    Tanh,
    get_activation,
)
from .deeponet import DeepONet, MIONet, TrunkNet
from .fourier import FourierFeatures
from .initializers import get_initializer
from .modules import MLP, Dense, Module, Sequential
from .optimizers import LBFGS, SGD, Adam, Optimizer, clip_grad_norm
from .schedules import (
    ConstantLR,
    ExponentialDecay,
    Schedule,
    StepLR,
    WarmupCosine,
    paper_schedule,
)
from .serialize import load_checkpoint, save_checkpoint
from .taylor import (
    DerivativeStreams,
    input_streams,
    propagate_activation,
    propagate_dense,
    propagate_fourier,
    propagate_mlp,
    trunk_with_derivatives,
)

__all__ = [
    "Activation",
    "Adam",
    "ConstantLR",
    "DeepONet",
    "Dense",
    "DerivativeStreams",
    "ExponentialDecay",
    "FourierFeatures",
    "Gelu",
    "Identity",
    "LBFGS",
    "MIONet",
    "MLP",
    "Module",
    "Optimizer",
    "Relu",
    "SGD",
    "Schedule",
    "Sequential",
    "Sine",
    "StepLR",
    "Swish",
    "Tanh",
    "TrunkNet",
    "WarmupCosine",
    "clip_grad_norm",
    "get_activation",
    "get_initializer",
    "input_streams",
    "load_checkpoint",
    "paper_schedule",
    "propagate_activation",
    "propagate_dense",
    "propagate_fourier",
    "propagate_mlp",
    "save_checkpoint",
    "trunk_with_derivatives",
]
