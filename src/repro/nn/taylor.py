"""Second-order forward propagation through trunk networks.

The physics-informed DeepONet loss (paper eqs. 8-11) needs the value,
first spatial derivatives and the diagonal of the spatial Hessian of the
trunk output at every collocation point.  Rather than nesting reverse-mode
passes (expensive and memory heavy), this module propagates three streams
through the network *forward*:

    V        value                     (n, width)
    G[i]     dV/dx_i                   (n, width)   for each input dim i
    H[i]     d^2 V / dx_i^2            (n, width)

through affine layers (linear maps commute with differentiation) and
elementwise activations (Faà-di-Bruno to second order):

    G'[i] = sigma'(z) * G[i]
    H'[i] = sigma''(z) * G[i]^2 + sigma'(z) * H[i]

All streams are built from :mod:`repro.autodiff` ops, so one ordinary
reverse pass through the final loss yields gradients with respect to every
network parameter.  The generic double-backward path of the autodiff engine
is used by the test-suite to verify these propagation rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .. import autodiff as ad
from ..autodiff import Tensor
from .activations import Activation
from .fourier import FourierFeatures
from .modules import Dense, MLP


@dataclass
class DerivativeStreams:
    """Value / gradient / diagonal-Hessian streams of a network output.

    ``gradient[i]`` and ``hessian_diag[i]`` correspond to the i-th *input*
    coordinate of the propagated network.  All entries share the row layout
    of the evaluation points.
    """

    value: Tensor
    gradient: List[Tensor]
    hessian_diag: List[Tensor]

    @property
    def n_dims(self) -> int:
        return len(self.gradient)

    def laplacian(self, axis_weights: Optional[Sequence[float]] = None) -> Tensor:
        """Weighted sum of the diagonal Hessian entries.

        ``axis_weights`` carry the nondimensionalization factors
        ``1 / L_i^2``; they default to 1.
        """
        weights = axis_weights if axis_weights is not None else [1.0] * self.n_dims
        if len(weights) != self.n_dims:
            raise ValueError(
                f"expected {self.n_dims} axis weights, got {len(weights)}"
            )
        total = weights[0] * self.hessian_diag[0]
        for weight, h in zip(weights[1:], self.hessian_diag[1:]):
            total = total + weight * h
        return total


def input_streams(points: np.ndarray) -> DerivativeStreams:
    """Seed streams for raw coordinates: dx_j/dx_i = delta_ij, Hessian 0."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be (n, d), got shape {points.shape}")
    n, d = points.shape
    value = ad.tensor(points)
    gradient = []
    for i in range(d):
        seed = np.zeros((n, d))
        seed[:, i] = 1.0
        gradient.append(ad.tensor(seed))
    hessian = [ad.tensor(np.zeros((n, d))) for _ in range(d)]
    return DerivativeStreams(value, gradient, hessian)


def propagate_dense(streams: DerivativeStreams, layer: Dense) -> DerivativeStreams:
    """Push streams through an affine layer."""
    value = layer(streams.value)
    gradient = [g @ layer.weight for g in streams.gradient]
    hessian = [h @ layer.weight for h in streams.hessian_diag]
    return DerivativeStreams(value, gradient, hessian)


def propagate_activation(
    streams: DerivativeStreams, activation: Activation
) -> DerivativeStreams:
    """Push streams through an elementwise activation (2nd-order chain rule)."""
    z = streams.value
    value = activation.value(z)
    d1 = activation.first(z)
    d2 = activation.second(z)
    gradient = [d1 * g for g in streams.gradient]
    hessian = [
        d2 * g * g + d1 * h
        for g, h in zip(streams.gradient, streams.hessian_diag)
    ]
    return DerivativeStreams(value, gradient, hessian)


def propagate_fourier(
    streams: DerivativeStreams, fourier: FourierFeatures
) -> DerivativeStreams:
    """Push streams through ``[sin(xB), cos(xB)]``.

    The frequency matrix is constant, so the angle behaves like a bias-free
    affine layer followed by the two trigonometric branches.
    """
    freq = fourier.frequencies
    angle = streams.value @ freq
    angle_grad = [g @ freq for g in streams.gradient]
    angle_hess = [h @ freq for h in streams.hessian_diag]

    sin_a, cos_a = ad.sin(angle), ad.cos(angle)
    value_parts = [sin_a, cos_a]
    if fourier.include_input:
        value_parts.append(streams.value)
    value = ad.concat(value_parts, axis=1)

    gradient = []
    hessian = []
    for axis, (g, h) in enumerate(zip(angle_grad, angle_hess)):
        grad_parts = [cos_a * g, -1.0 * sin_a * g]
        hess_parts = [
            -1.0 * sin_a * g * g + cos_a * h,
            -1.0 * cos_a * g * g - sin_a * h,
        ]
        if fourier.include_input:
            grad_parts.append(streams.gradient[axis])
            hess_parts.append(streams.hessian_diag[axis])
        gradient.append(ad.concat(grad_parts, axis=1))
        hessian.append(ad.concat(hess_parts, axis=1))
    return DerivativeStreams(value, gradient, hessian)


def propagate_mlp(streams: DerivativeStreams, mlp: MLP) -> DerivativeStreams:
    """Push streams through every layer of an MLP."""
    out = streams
    for layer in mlp.layers[:-1]:
        out = propagate_dense(out, layer)
        out = propagate_activation(out, mlp.activation)
    out = propagate_dense(out, mlp.layers[-1])
    if mlp.output_activation is not None:
        out = propagate_activation(out, mlp.output_activation)
    return out


def trunk_with_derivatives(
    points: np.ndarray,
    mlp: MLP,
    fourier: Optional[FourierFeatures] = None,
) -> DerivativeStreams:
    """Evaluate a (Fourier-featured) trunk net with spatial derivatives.

    Returns streams at the trunk *feature* output (n, q); the DeepONet
    combine step contracts them with branch features.
    """
    streams = input_streams(points)
    if fourier is not None:
        streams = propagate_fourier(streams, fourier)
    return propagate_mlp(streams, mlp)
