"""Second-order forward propagation through trunk networks.

The physics-informed DeepONet loss (paper eqs. 8-11) needs the value,
first spatial derivatives and the diagonal of the spatial Hessian of the
trunk output at every collocation point.  Rather than nesting reverse-mode
passes (expensive and memory heavy), this module propagates three streams
through the network *forward*:

    V        value                     (n, width)
    G[i]     dV/dx_i                   (n, width)   for each input dim i
    H[i]     d^2 V / dx_i^2            (n, width)

through affine layers (linear maps commute with differentiation) and
elementwise activations (Faà-di-Bruno to second order):

    G'[i] = sigma'(z) * G[i]
    H'[i] = sigma''(z) * G[i]^2 + sigma'(z) * H[i]

All streams are built from :mod:`repro.autodiff` ops, so one ordinary
reverse pass through the final loss yields gradients with respect to every
network parameter.  The generic double-backward path of the autodiff engine
is used by the test-suite to verify these propagation rules.

Two equivalent propagation layouts are provided:

* the original **per-axis** layout (:class:`DerivativeStreams`): 2d+1
  independent (n, width) tensors, one tape chain each — 7 small matmuls
  per Dense layer in 3-D.  Kept as the numerical reference, reachable via
  ``trunk_with_derivatives(..., stacked=False)``.
* the **stacked** layout (:class:`StackedStreams`): all streams packed
  row-wise into a single ``((2d+1)*n, width)`` tensor ``[V; G_1..G_d;
  H_1..H_d]``.  Linear maps commute with differentiation, so a Dense
  layer is *one* large matmul (a single fused tape node whose bias lands
  on the value block only) and each activation step is one fused kernel:
  the forward propagates (sigma, sigma', sigma'') in plain numpy and the
  hand-written VJP uses the closed-form *third* derivative.  This cuts
  tape nodes per trunk layer from ~30 to 2 and replaces many small BLAS
  calls with few large ones — the training hot path.

The training loss never consumes per-axis Hessians, only the weighted
Laplacian ``sum_i w_i H_i`` (eq. 10) and per-axis gradients (eqs. 8/9),
so the stacked layout optionally fuses the d Hessian blocks into that
single combination (``laplacian_weights``): ``((d+2)*n, width)`` rows
instead of ``((2d+1)*n, width)`` through every matmul.  Both stacked
variants match the per-axis reference to machine precision (see
``tests/test_taylor_fused.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import autodiff as ad
from ..autodiff import Tensor
from ..autodiff.tensor import _make as _make_op
from .activations import Activation
from .fourier import FourierFeatures
from .modules import Dense, MLP


@dataclass
class DerivativeStreams:
    """Value / gradient / diagonal-Hessian streams of a network output.

    ``gradient[i]`` and ``hessian_diag[i]`` correspond to the i-th *input*
    coordinate of the propagated network.  All entries share the row layout
    of the evaluation points.

    The Laplacian-fused training path does not carry per-axis Hessians at
    all: it propagates the single weighted combination
    ``sum_i w_i d^2V/dx_i^2`` instead, stored in ``laplacian_weighted``
    (with the weights it was built for in ``laplacian_axis_weights`` and
    ``hessian_diag`` left empty).  Region slices produced by the
    *selective* combine carry only the entries that region's residual
    reads; unused entries (including ``value`` and individual
    ``gradient`` positions) are then ``None``.
    """

    value: Tensor
    gradient: List[Tensor]
    hessian_diag: List[Tensor]
    laplacian_weighted: Optional[Tensor] = None
    laplacian_axis_weights: Optional[Tuple[float, ...]] = None

    @property
    def n_dims(self) -> int:
        return len(self.gradient)

    def laplacian(self, axis_weights: Optional[Sequence[float]] = None) -> Tensor:
        """Weighted sum of the diagonal Hessian entries.

        ``axis_weights`` carry the nondimensionalization factors
        ``1 / L_i^2``; they default to 1.  When the streams were produced
        by the Laplacian-fused propagation the precomputed combination is
        returned directly (the requested weights must match the ones the
        stack was built with).
        """
        weights = axis_weights if axis_weights is not None else [1.0] * self.n_dims
        if len(weights) != self.n_dims:
            raise ValueError(
                f"expected {self.n_dims} axis weights, got {len(weights)}"
            )
        if self.laplacian_weighted is not None:
            built_for = self.laplacian_axis_weights
            if built_for is not None and not np.allclose(
                built_for, np.asarray(weights, dtype=np.float64)
            ):
                raise ValueError(
                    f"streams carry a Laplacian fused with weights {built_for}, "
                    f"but {tuple(weights)} were requested"
                )
            return self.laplacian_weighted
        if not self.hessian_diag:
            raise ValueError(
                "streams carry neither per-axis Hessians nor a fused Laplacian"
            )
        total = weights[0] * self.hessian_diag[0]
        for weight, h in zip(weights[1:], self.hessian_diag[1:]):
            total = total + weight * h
        return total


def input_streams(points: np.ndarray) -> DerivativeStreams:
    """Seed streams for raw coordinates: dx_j/dx_i = delta_ij, Hessian 0."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be (n, d), got shape {points.shape}")
    n, d = points.shape
    value = ad.tensor(points)
    gradient = []
    for i in range(d):
        seed = np.zeros((n, d))
        seed[:, i] = 1.0
        gradient.append(ad.tensor(seed))
    hessian = [ad.tensor(np.zeros((n, d))) for _ in range(d)]
    return DerivativeStreams(value, gradient, hessian)


def propagate_dense(streams: DerivativeStreams, layer: Dense) -> DerivativeStreams:
    """Push streams through an affine layer."""
    value = layer(streams.value)
    gradient = [g @ layer.weight for g in streams.gradient]
    hessian = [h @ layer.weight for h in streams.hessian_diag]
    return DerivativeStreams(value, gradient, hessian)


def propagate_activation(
    streams: DerivativeStreams, activation: Activation
) -> DerivativeStreams:
    """Push streams through an elementwise activation (2nd-order chain rule)."""
    z = streams.value
    value = activation.value(z)
    d1 = activation.first(z)
    d2 = activation.second(z)
    gradient = [d1 * g for g in streams.gradient]
    hessian = [
        d2 * g * g + d1 * h
        for g, h in zip(streams.gradient, streams.hessian_diag)
    ]
    return DerivativeStreams(value, gradient, hessian)


def propagate_fourier(
    streams: DerivativeStreams, fourier: FourierFeatures
) -> DerivativeStreams:
    """Push streams through ``[sin(xB), cos(xB)]``.

    The frequency matrix is constant, so the angle behaves like a bias-free
    affine layer followed by the two trigonometric branches.
    """
    freq = fourier.frequencies
    angle = streams.value @ freq
    angle_grad = [g @ freq for g in streams.gradient]
    angle_hess = [h @ freq for h in streams.hessian_diag]

    sin_a, cos_a = ad.sin(angle), ad.cos(angle)
    value_parts = [sin_a, cos_a]
    if fourier.include_input:
        value_parts.append(streams.value)
    value = ad.concat(value_parts, axis=1)

    gradient = []
    hessian = []
    for axis, (g, h) in enumerate(zip(angle_grad, angle_hess)):
        grad_parts = [cos_a * g, -1.0 * sin_a * g]
        hess_parts = [
            -1.0 * sin_a * g * g + cos_a * h,
            -1.0 * cos_a * g * g - sin_a * h,
        ]
        if fourier.include_input:
            grad_parts.append(streams.gradient[axis])
            hess_parts.append(streams.hessian_diag[axis])
        gradient.append(ad.concat(grad_parts, axis=1))
        hessian.append(ad.concat(hess_parts, axis=1))
    return DerivativeStreams(value, gradient, hessian)


def propagate_mlp(streams: DerivativeStreams, mlp: MLP) -> DerivativeStreams:
    """Push streams through every layer of an MLP."""
    out = streams
    for layer in mlp.layers[:-1]:
        out = propagate_dense(out, layer)
        out = propagate_activation(out, mlp.activation)
    out = propagate_dense(out, mlp.layers[-1])
    if mlp.output_activation is not None:
        out = propagate_activation(out, mlp.output_activation)
    return out


# ----------------------------------------------------------------------
# Stacked (fused) propagation
# ----------------------------------------------------------------------
@dataclass
class StackedStreams:
    """All derivative streams packed row-wise into one tensor.

    Two layouts share the machinery:

    * **full** (``laplacian_weights is None``): ``data`` has shape
      ``((2*n_dims + 1) * n, width)`` — rows ``[0, n)`` hold the value
      stream, rows ``[(1+i)*n, (2+i)*n)`` the gradient along axis ``i``
      and rows ``[(1+n_dims+i)*n, ...)`` the diagonal-Hessian stream
      along axis ``i``.
    * **Laplacian-fused** (``laplacian_weights`` given): the d Hessian
      blocks are replaced by the single weighted combination
      ``sum_i w_i H_i`` — shape ``((n_dims + 2) * n, width)``.  The
      physics loss only ever consumes the weighted Laplacian (eq. 10) and
      per-axis first derivatives (eqs. 8/9), so this drops ``(d-1)*n``
      rows from every matmul of the training hot path.

    The row count is invariant under Dense/activation/Fourier steps; only
    the width changes.
    """

    data: Tensor
    n: int
    n_dims: int
    laplacian_weights: Optional[np.ndarray] = None

    @property
    def width(self) -> int:
        return self.data.shape[1]

    @property
    def n_hessian_blocks(self) -> int:
        return 1 if self.laplacian_weights is not None else self.n_dims

    @property
    def n_blocks(self) -> int:
        return 1 + self.n_dims + self.n_hessian_blocks

    def blocks(self) -> Tuple[Tensor, Tensor, Tensor]:
        """Split into (value, stacked-gradient, Hessian/Laplacian) views.

        The gradient part stays stacked across axes: shapes are
        ``(n, w)``, ``(d*n, w)`` and ``(d*n, w)`` (full layout) or
        ``(n, w)`` (Laplacian-fused layout).
        """
        n, dn = self.n, self.n_dims * self.n
        return (
            self.data[: n],
            self.data[n : n + dn],
            self.data[n + dn :],
        )

    def unpack(self) -> DerivativeStreams:
        """Expand into the per-axis :class:`DerivativeStreams` layout."""
        n, d = self.n, self.n_dims
        value = self.data[:n]
        gradient = [self.data[(1 + i) * n : (2 + i) * n] for i in range(d)]
        if self.laplacian_weights is not None:
            return DerivativeStreams(
                value,
                gradient,
                [],
                laplacian_weighted=self.data[(1 + d) * n :],
                laplacian_axis_weights=tuple(float(w) for w in self.laplacian_weights),
            )
        hessian = [
            self.data[(1 + d + i) * n : (2 + d + i) * n] for i in range(d)
        ]
        return DerivativeStreams(value, gradient, hessian)


def stream_block_index(need: str, n_dims: int) -> int:
    """Block position of a named stream in the stacked row layout.

    ``need`` is ``"value"``, ``"grad<axis>"`` or ``"laplacian"`` (the
    vocabulary of :meth:`PhysicsLossBuilder.stream_requirements`); rows
    of that stream live at ``[index * n, (index + 1) * n)``.  Keeping
    this next to :class:`StackedStreams` single-sources the layout that
    ``blocks``/``unpack`` and the selective combine all rely on.
    """
    if need == "value":
        return 0
    if need == "laplacian":
        return 1 + n_dims
    if need.startswith("grad"):
        axis = int(need[4:])
        if 0 <= axis < n_dims:
            return 1 + axis
    raise ValueError(f"unknown stream name {need!r} for {n_dims} dims")


def input_stacked(
    points: np.ndarray, laplacian_weights: Optional[Sequence[float]] = None
) -> StackedStreams:
    """Seed stacked streams: ``[x; I-seeds; 0]`` in one constant tensor."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be (n, d), got shape {points.shape}")
    n, d = points.shape
    weights = None
    if laplacian_weights is not None:
        weights = np.asarray(laplacian_weights, dtype=np.float64)
        if weights.shape != (d,):
            raise ValueError(
                f"need {d} Laplacian axis weights, got shape {weights.shape}"
            )
    hess_blocks = 1 if weights is not None else d
    rows = (1 + d + hess_blocks) * n
    data = np.zeros((rows, d))
    data[:n] = points
    for i in range(d):
        data[(1 + i) * n : (2 + i) * n, i] = 1.0
    return StackedStreams(ad.tensor(data), n, d, weights)


def propagate_stacked_dense(
    streams: StackedStreams, layer: Dense
) -> StackedStreams:
    """Affine layer over the whole stack: one fused matmul tape node.

    The weight multiply covers all 2d+1 blocks in a single dgemm; the
    bias lands on the value rows only (in place, on the fresh output
    buffer), because differentiation kills constants in the gradient and
    Hessian streams.  The hand-written VJP is built from ordinary tape
    ops, so double backward through this node still works.
    """
    n = streams.n
    data, weight = streams.data, layer.weight
    out = data.data @ weight.data
    bias = layer.bias if layer.use_bias else None
    if bias is not None:
        out[:n] += bias.data

        def vjp(g: Tensor):
            gs = g @ weight.T if data.requires_grad else None
            gw = data.T @ g if weight.requires_grad else None
            gb = ad.sum_(g[:n], axis=0) if bias.requires_grad else None
            return gs, gw, gb

        node = _make_op(out, (data, weight, bias), vjp, "stacked_affine")
    else:

        def vjp(g: Tensor):
            gs = g @ weight.T if data.requires_grad else None
            gw = data.T @ g if weight.requires_grad else None
            return gs, gw

        node = _make_op(out, (data, weight), vjp, "stacked_affine")
    return StackedStreams(node, n, streams.n_dims, streams.laplacian_weights)


def _composed_stacked_activation(
    streams: StackedStreams, activation: Activation
) -> StackedStreams:
    """Tape-composed stacked activation (fallback / higher-order path).

    Used when the activation has no closed-form third derivative
    (``array_taylor3`` returns None): the per-block multipliers
    sigma'(z) / sigma''(z) are computed once on the value block and tiled
    down the gradient/Hessian blocks.
    """
    n, d = streams.n, streams.n_dims
    value, grad, hess = streams.blocks()
    out_value, d1, d2 = activation.taylor(value)
    d1_tiled = ad.tile_rows(d1, d)
    out_grad = d1_tiled * grad
    if streams.laplacian_weights is not None:
        weights = ad.tensor(streams.laplacian_weights.reshape(d, 1, 1))
        grad3 = ad.reshape(grad, (d, n, streams.width))
        quad = ad.sum_(weights * grad3 * grad3, axis=0)
        out_hess = d2 * quad + d1 * hess
    else:
        d2_tiled = ad.tile_rows(d2, d)
        out_hess = d2_tiled * grad * grad + d1_tiled * hess
    data = ad.concat([out_value, out_grad, out_hess], axis=0)
    return StackedStreams(data, n, d, streams.laplacian_weights)


def propagate_stacked_activation(
    streams: StackedStreams, activation: Activation
) -> StackedStreams:
    """Second-order chain rule over the whole stack as ONE tape node.

    Forward (all plain numpy, broadcasting sigma-derivative blocks over
    the axis dimension), in the full layout:

        V' = sigma(V);  G_i' = s1 G_i;  H_i' = s2 G_i^2 + s1 H_i

    and in the Laplacian-fused layout (L = sum_i w_i H_i, Q = sum_i w_i
    G_i^2, both closed under propagation):

        V' = sigma(V);  G_i' = s1 G_i;  L' = s2 Q + s1 L

    The hand-written VJP uses the closed-form third derivative, e.g. for
    the full layout:

        dL/dV   = gV s1 + s2 (sum_i gG_i G_i + sum_i gH_i H_i)
                  + s3 sum_i gH_i G_i^2
        dL/dG_i = gG_i s1 + 2 s2 gH_i G_i
        dL/dH_i = gH_i s1

    This collapses the ~25 tape nodes of the composed expression into a
    single node with a handful of vectorised passes — the core fused
    training kernel.  Activations without ``array_taylor3`` fall back to
    the composed tape expression; ``create_graph`` double-backward is
    only supported by the fallback (the training loop never needs it).
    """
    n, d = streams.n, streams.n_dims
    data = streams.data
    value_rows = data.data[:n]
    arrays = activation.array_taylor3(value_rows)
    if arrays is None:
        return _composed_stacked_activation(streams, activation)
    value, s1, s2, s3 = arrays
    dn = d * n
    width = data.shape[1]
    lap_weights = streams.laplacian_weights
    src = np.ascontiguousarray(data.data)
    grad3 = src[n : n + dn].reshape(d, n, width)
    out = np.empty_like(src)
    out[:n] = value
    np.multiply(grad3, s1, out=out[n : n + dn].reshape(d, n, width))

    if lap_weights is None:
        hess3 = src[n + dn :].reshape(d, n, width)
        out_hess = out[n + dn :].reshape(d, n, width)
        np.multiply(grad3, grad3, out=out_hess)
        out_hess *= s2
        out_hess += s1 * hess3

        def vjp(g: Tensor):
            if ad.is_grad_enabled():
                raise NotImplementedError(
                    "fused stacked activation does not support create_graph; "
                    "use the per-axis path (stacked=False) for higher-order "
                    "derivatives"
                )
            g_src = np.ascontiguousarray(g.data)
            g_value = g_src[:n]
            g_grad3 = g_src[n : n + dn].reshape(d, n, width)
            g_hess3 = g_src[n + dn :].reshape(d, n, width)
            out_cot = np.empty_like(src)
            gh_g = g_hess3 * grad3
            out_cot[:n] = (
                g_value * s1
                + s2
                * ((g_grad3 * grad3).sum(axis=0) + (g_hess3 * hess3).sum(axis=0))
                + s3 * (gh_g * grad3).sum(axis=0)
            )
            cot_grad = out_cot[n : n + dn].reshape(d, n, width)
            np.multiply(g_grad3, s1, out=cot_grad)
            gh_g *= 2.0 * s2
            cot_grad += gh_g
            np.multiply(g_hess3, s1, out=out_cot[n + dn :].reshape(d, n, width))
            return (Tensor(out_cot),)

    else:
        lap = src[n + dn :]
        # Q = sum_i w_i G_i^2, accumulated block-wise: einsum/bmm paths
        # copy the strided (d, n, w) operands, explicit loops do not.
        scratch = np.empty((n, width))
        np.multiply(grad3[0], grad3[0], out=scratch)
        quad = scratch * lap_weights[0]
        for i in range(1, d):
            np.multiply(grad3[i], grad3[i], out=scratch)
            scratch *= lap_weights[i]
            quad += scratch
        out_lap = out[n + dn :]
        np.multiply(quad, s2, out=out_lap)
        np.multiply(lap, s1, out=scratch)
        out_lap += scratch

        def vjp(g: Tensor):
            if ad.is_grad_enabled():
                raise NotImplementedError(
                    "fused stacked activation does not support create_graph; "
                    "use the per-axis path (stacked=False) for higher-order "
                    "derivatives"
                )
            g_src = np.ascontiguousarray(g.data)
            g_value = g_src[:n]
            g_grad3 = g_src[n : n + dn].reshape(d, n, width)
            g_lap = g_src[n + dn :]
            out_cot = np.empty_like(src)
            buf = np.empty((n, width))
            # Value-block cotangent, accumulated block-wise:
            #   gV s1 + s2 (sum_i gG_i G_i + gL L) + s3 gL Q
            head = out_cot[:n]
            np.multiply(g_grad3[0], grad3[0], out=head)
            for i in range(1, d):
                np.multiply(g_grad3[i], grad3[i], out=buf)
                head += buf
            np.multiply(g_lap, lap, out=buf)
            head += buf
            head *= s2
            np.multiply(g_value, s1, out=buf)
            head += buf
            np.multiply(g_lap, quad, out=buf)
            buf *= s3
            head += buf
            # Gradient-block cotangent: gG_i s1 + 2 w_i s2 gL G_i
            cot_grad = out_cot[n : n + dn].reshape(d, n, width)
            two_s2_glap = np.multiply(g_lap, 2.0 * s2)
            for i in range(d):
                np.multiply(g_grad3[i], s1, out=cot_grad[i])
                np.multiply(two_s2_glap, grad3[i], out=buf)
                buf *= lap_weights[i]
                cot_grad[i] += buf
            np.multiply(g_lap, s1, out=out_cot[n + dn :])
            return (Tensor(out_cot),)

    node = _make_op(out, (data,), vjp, "stacked_activation")
    return StackedStreams(node, n, d, lap_weights)


def propagate_stacked_fourier(
    streams: StackedStreams, fourier: FourierFeatures
) -> StackedStreams:
    """Push the stack through ``[sin(xB), cos(xB)]`` with one angle matmul."""
    n, d = streams.n, streams.n_dims
    angles = streams.data @ fourier.frequencies
    angle_v, angle_g, angle_h = StackedStreams(
        angles, n, d, streams.laplacian_weights
    ).blocks()

    sin_a, cos_a = ad.sin(angle_v), ad.cos(angle_v)
    sin_t = ad.tile_rows(sin_a, d)
    cos_t = ad.tile_rows(cos_a, d)
    neg_sin_t = -1.0 * sin_t
    neg_cos_t = -1.0 * cos_t

    value_parts = [sin_a, cos_a]
    grad_parts = [cos_t * angle_g, neg_sin_t * angle_g]
    if streams.laplacian_weights is not None:
        # angle_h here is the single fused stream sum_i w_i H_i of the
        # angle; the quadratic term needs Q = sum_i w_i (dA/dx_i)^2.
        weights = ad.tensor(streams.laplacian_weights.reshape(d, 1, 1))
        angle_g3 = ad.reshape(angle_g, (d, n, angles.shape[1]))
        quad = ad.sum_(weights * angle_g3 * angle_g3, axis=0)
        neg_sin = -1.0 * sin_a
        neg_cos = -1.0 * cos_a
        hess_parts = [
            neg_sin * quad + cos_a * angle_h,
            neg_cos * quad + neg_sin * angle_h,
        ]
    else:
        hess_parts = [
            neg_sin_t * angle_g * angle_g + cos_t * angle_h,
            neg_cos_t * angle_g * angle_g + neg_sin_t * angle_h,
        ]
    if fourier.include_input:
        in_value, in_grad, in_hess = streams.blocks()
        value_parts.append(in_value)
        grad_parts.append(in_grad)
        hess_parts.append(in_hess)
    data = ad.concat(
        [
            ad.concat(value_parts, axis=1),
            ad.concat(grad_parts, axis=1),
            ad.concat(hess_parts, axis=1),
        ],
        axis=0,
    )
    return StackedStreams(data, n, d, streams.laplacian_weights)


def propagate_stacked_mlp(streams: StackedStreams, mlp: MLP) -> StackedStreams:
    """Push stacked streams through every layer of an MLP."""
    out = streams
    for layer in mlp.layers[:-1]:
        out = propagate_stacked_dense(out, layer)
        out = propagate_stacked_activation(out, mlp.activation)
    out = propagate_stacked_dense(out, mlp.layers[-1])
    if mlp.output_activation is not None:
        out = propagate_stacked_activation(out, mlp.output_activation)
    return out


def stacked_prefix(
    points: np.ndarray,
    fourier: Optional[FourierFeatures] = None,
    laplacian_weights: Optional[Sequence[float]] = None,
) -> StackedStreams:
    """The constant stage of a stacked trunk pass: seed + Fourier map.

    Depends only on the points and the fixed frequency matrix, never on
    trainable weights — :meth:`TrunkNet.stacked_streams` caches it across
    iterations for fixed collocation meshes.
    """
    streams = input_stacked(points, laplacian_weights)
    if fourier is not None:
        streams = propagate_stacked_fourier(streams, fourier)
    return streams


def trunk_stacked(
    points: np.ndarray,
    mlp: MLP,
    fourier: Optional[FourierFeatures] = None,
    laplacian_weights: Optional[Sequence[float]] = None,
) -> StackedStreams:
    """Stacked-layout trunk evaluation (the fused training hot path).

    With ``laplacian_weights`` the Hessian blocks collapse into the
    single weighted Laplacian stream the PDE residual consumes.
    """
    return propagate_stacked_mlp(
        stacked_prefix(points, fourier, laplacian_weights), mlp
    )


def trunk_with_derivatives(
    points: np.ndarray,
    mlp: MLP,
    fourier: Optional[FourierFeatures] = None,
    stacked: bool = True,
) -> DerivativeStreams:
    """Evaluate a (Fourier-featured) trunk net with spatial derivatives.

    Returns streams at the trunk *feature* output (n, q); the DeepONet
    combine step contracts them with branch features.  ``stacked=True``
    (the default) runs the fused single-tensor propagation and unpacks at
    the end; ``stacked=False`` keeps the legacy 2d+1 independent tape
    chains as the numerical reference.
    """
    if stacked:
        return trunk_stacked(points, mlp, fourier).unpack()
    streams = input_streams(points)
    if fourier is not None:
        streams = propagate_fourier(streams, fourier)
    return propagate_mlp(streams, mlp)
