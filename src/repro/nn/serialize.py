"""Checkpoint save/load for modules (npz-based)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .modules import Module

PathLike = Union[str, Path]

_META_KEY = "__meta_json__"


def save_checkpoint(module: Module, path: PathLike, meta: Optional[Dict] = None) -> Path:
    """Write a module's parameters (and optional JSON metadata) to ``path``.

    Parameter names may contain dots; they are stored verbatim as npz keys.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(module.state_dict())
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(module: Module, path: PathLike) -> Dict:
    """Restore parameters saved by :func:`save_checkpoint`; returns metadata."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        meta_raw = archive[_META_KEY].tobytes().decode("utf-8") if _META_KEY in archive else "{}"
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
    module.load_state_dict(state)
    return json.loads(meta_raw)
