"""Checkpoint save/load for modules (npz-based, digest-verified).

Every checkpoint written here carries a sha256 of its parameter payload
inside the metadata (``payload_sha256``, over the sorted parameter
names, dtypes, shapes and raw bytes — the meta blob itself is excluded,
since it contains the digest).  :func:`load_checkpoint` recomputes and
verifies it, so a truncated npz, a bit-flipped array or a half-written
file raises a structured :class:`CheckpointCorrupt` instead of a raw
deserialization traceback from deep inside numpy.  Checkpoints written
before digests existed load without verification.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

import numpy as np

from .modules import Module

PathLike = Union[str, Path]

_META_KEY = "__meta_json__"
PAYLOAD_DIGEST_KEY = "payload_sha256"


class CheckpointCorrupt(RuntimeError):
    """A checkpoint file failed deserialization or digest verification.

    Carries the offending ``path``, a human ``reason``, and — when a
    registry quarantined the file — the ``quarantined`` path it was
    moved to.
    """

    def __init__(
        self,
        path: PathLike,
        reason: str,
        quarantined: Optional[PathLike] = None,
    ):
        self.path = Path(path)
        self.reason = reason
        self.quarantined = None if quarantined is None else Path(quarantined)
        message = f"corrupt checkpoint {self.path}: {reason}"
        if self.quarantined is not None:
            message += f" (quarantined to {self.quarantined})"
        super().__init__(message)


def payload_digest(arrays: Mapping[str, np.ndarray]) -> str:
    """sha256 over a named-array payload, order-independent.

    Hashes ``(name, dtype, shape, bytes)`` in sorted-name order, so the
    digest is a pure function of the content — independent of dict
    insertion order or npz member order.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(str(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def write_payload(
    path: PathLike, arrays: Mapping[str, np.ndarray], meta: Optional[Dict] = None
) -> Path:
    """Crash-safe npz write of named arrays with digested JSON metadata.

    Writes to a sibling temp file and ``os.replace``s into place, so a
    crash (or ``kill -9``) mid-write leaves either the previous file or
    nothing — never a torn archive under the real name.  The metadata
    gains a ``payload_sha256`` digest verified by :func:`read_payload`.
    Returns the final path (np.savez appends ``.npz`` when missing).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    final = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    meta = dict(meta or {})
    meta[PAYLOAD_DIGEST_KEY] = payload_digest(arrays)
    payload = dict(arrays)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    tmp = final.with_name(final.name + f".tmp{os.getpid()}")
    np.savez(tmp, **payload)
    written = tmp if tmp.suffix == ".npz" else tmp.with_suffix(tmp.suffix + ".npz")
    os.replace(written, final)
    return final


def save_checkpoint(module: Module, path: PathLike, meta: Optional[Dict] = None) -> Path:
    """Write a module's parameters (and optional JSON metadata) to ``path``.

    Parameter names may contain dots; they are stored verbatim as npz
    keys.  The write is atomic and the metadata gains a
    ``payload_sha256`` digest of the parameter arrays, verified by
    :func:`load_checkpoint` (see :func:`write_payload`).
    """
    return write_payload(path, dict(module.state_dict()), meta)


def read_payload(path: PathLike) -> tuple:
    """Load ``(state_arrays, meta)`` from an npz checkpoint, verified.

    The shared deserialization half of :func:`load_checkpoint` and the
    trainer-state loader: raises :class:`CheckpointCorrupt` for
    anything short of a well-formed archive whose payload matches its
    recorded digest (missing files still raise ``FileNotFoundError`` —
    absence is not corruption).
    """
    path = Path(path)
    try:
        with np.load(path) as archive:
            meta_raw = (
                archive[_META_KEY].tobytes().decode("utf-8")
                if _META_KEY in archive
                else "{}"
            )
            state = {k: archive[k] for k in archive.files if k != _META_KEY}
        meta = json.loads(meta_raw)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, KeyError, EOFError, OSError) as exc:
        raise CheckpointCorrupt(path, f"unreadable archive: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointCorrupt(path, f"malformed metadata JSON: {exc}") from exc
    # The digest is an integrity detail, not caller metadata: verify it,
    # then strip it so save/load round-trips the caller's meta exactly.
    expected = meta.pop(PAYLOAD_DIGEST_KEY, None)
    if expected is not None:
        actual = payload_digest(state)
        if actual != expected:
            raise CheckpointCorrupt(
                path,
                f"payload digest mismatch (recorded {expected[:16]}…, "
                f"recomputed {actual[:16]}…)",
            )
    return state, meta


def read_checkpoint_meta(path: PathLike) -> Dict:
    """Load only the JSON metadata of an npz checkpoint, skipping arrays.

    For lineage walks and registry introspection where deserializing
    (and digest-verifying) the full parameter payload would be wasted
    work.  Raises :class:`CheckpointCorrupt` on unreadable archives or
    malformed metadata; missing files raise ``FileNotFoundError``.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    try:
        with np.load(path) as archive:
            meta_raw = (
                archive[_META_KEY].tobytes().decode("utf-8")
                if _META_KEY in archive
                else "{}"
            )
        meta = json.loads(meta_raw)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, KeyError, EOFError, OSError) as exc:
        raise CheckpointCorrupt(path, f"unreadable archive: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointCorrupt(path, f"malformed metadata JSON: {exc}") from exc
    meta.pop(PAYLOAD_DIGEST_KEY, None)
    return meta


def load_checkpoint(module: Module, path: PathLike) -> Dict:
    """Restore parameters saved by :func:`save_checkpoint`; returns metadata.

    Raises :class:`CheckpointCorrupt` when the file is unreadable or its
    payload fails sha256 verification, and ``FileNotFoundError`` when it
    simply does not exist.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    state, meta = read_payload(path)
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise CheckpointCorrupt(
            path, f"state dict does not fit the module: {exc}"
        ) from exc
    return meta
