"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so every model
build in the reproduction is deterministic under a fixed seed.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

Initializer = Callable[[np.random.Generator, Tuple[int, ...]], np.ndarray]


def glorot_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform — the deepxde default used by the paper."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    scale = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, scale, size=shape)


def he_normal(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def he_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def normal(rng: np.random.Generator, shape: Tuple[int, ...], std: float = 1.0) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[0] * receptive, shape[1] * receptive


_REGISTRY: Dict[str, Initializer] = {
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "zeros": zeros,
}


def get_initializer(name: str) -> Initializer:
    """Look up an initializer by name (raises ``KeyError`` with choices)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
