"""Deterministic fault injection for exercising recovery paths.

Every self-healing mechanism in this codebase — worker respawn in
:class:`~repro.parallel.PersistentPool`, operator replay in the solve
farm, training checkpoint/resume, the serve watchdog — is only as good
as its test coverage, and crashes are hard to schedule from outside.
This module lets tests (and chaos jobs) schedule them *exactly*:
production code calls :func:`hit` at named injection points, and an
armed :class:`FaultPlan` decides whether that particular hit kills the
process, raises, sleeps, or drops a connection.

Disarmed (the default, and the only state production ever runs in) a
:func:`hit` call is one module-global ``None`` check — no allocation
beyond the kwargs dict, no locking, no plan scan.

Sites currently wired in::

    pool.task          worker side, before each task        (worker, task)
    trainer.iteration  parent, top of each training step    (iteration)
    serve.compute      batcher thread, before a fused call  (op, batch)
    serve.connection   daemon, before each frame read       (peer)

Actions:

``kill``
    ``os._exit(exit_code)`` — instant death, no cleanup, no atexit: the
    in-process equivalent of ``kill -9``.
``raise``
    raise :class:`FaultInjected` out of the site.
``delay``
    ``time.sleep(delay_seconds)`` inside the site (wedge simulation).
``drop``
    raise :class:`ConnectionDropInjected`; connection-owning sites
    translate it into an abrupt close (a reset, from the peer's side).

Rules gate on the *matching hit count per process*: skip the first
``after`` hits, fire on the next ``times`` (0 = forever), optionally
with probability drawn from a ``seed``-determined stream so stochastic
plans replay identically.

Cross-process propagation: ``arm(plan, propagate=True)`` exports the
plan via the ``REPRO_FAULTS`` environment variable, which spawned pool
workers re-arm from (:func:`load_from_env`).  Hit counters are
per-process, so a respawned worker starts counting from zero — a test
that wants a one-shot worker kill should spawn the pool inside the
armed window, then call :func:`unpropagate` before triggering the
fault, so replacement workers come up disarmed.
"""

from __future__ import annotations

import json
import logging
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional

logger = logging.getLogger("repro.faults")

__all__ = [
    "ACTIONS",
    "ENV_VAR",
    "ConnectionDropInjected",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active",
    "arm",
    "disarm",
    "fired",
    "hit",
    "injected",
    "load_from_env",
    "unpropagate",
]

ENV_VAR = "REPRO_FAULTS"
ACTIONS = ("kill", "raise", "delay", "drop")


class FaultInjected(RuntimeError):
    """An armed ``raise`` rule fired at an injection site."""

    def __init__(self, site: str, message: str):
        self.site = site
        super().__init__(message)


class ConnectionDropInjected(FaultInjected):
    """An armed ``drop`` rule fired; the site closes its connection."""


@dataclass
class FaultRule:
    """One scheduled fault: where, what, and on which hits.

    ``match`` entries are compared by equality against the context the
    site passes to :func:`hit`; a rule only counts hits whose context
    matches (so ``match={"worker": 1}`` schedules against worker 1's
    private task sequence, not the pool-wide one).
    """

    site: str
    action: str = "raise"
    match: Dict[str, Any] = field(default_factory=dict)
    after: int = 0  # skip this many matching hits first
    times: int = 1  # then fire on this many (0 = every one)
    probability: float = 1.0
    delay_seconds: float = 0.0
    exit_code: int = 137
    message: str = ""

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; one of {ACTIONS}")
        if self.after < 0 or self.times < 0:
            raise ValueError("after/times must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")


@dataclass
class FaultPlan:
    """A seedable schedule of :class:`FaultRule` entries."""

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "rules": [asdict(rule) for rule in self.rules]}
        )

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        data = json.loads(blob)
        rules = [FaultRule(**rule) for rule in data.get("rules", [])]
        return cls(rules=rules, seed=int(data.get("seed", 0)))


class _Registry:
    """Armed plan + per-process hit counters (thread-safe)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._hits: Dict[int, int] = {}  # rule index -> matching hit count
        self._rng = random.Random(plan.seed)
        self.fired: Dict[str, int] = {}  # site -> fired count

    def hit(self, site: str, context: Dict[str, Any]) -> None:
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            if any(context.get(key) != value for key, value in rule.match.items()):
                continue
            with self._lock:
                count = self._hits.get(index, 0)
                self._hits[index] = count + 1
                if count < rule.after:
                    continue
                if rule.times and count >= rule.after + rule.times:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                self.fired[site] = self.fired.get(site, 0) + 1
            self._fire(rule, site, context)

    def _fire(self, rule: FaultRule, site: str, context: Dict[str, Any]) -> None:
        detail = rule.message or (
            f"injected {rule.action} at {site} (pid {os.getpid()}, context {context})"
        )
        if rule.action == "delay":
            logger.warning(
                "fault injection: sleeping %.3fs at %s", rule.delay_seconds, site
            )
            time.sleep(rule.delay_seconds)
            return
        if rule.action == "kill":
            logger.warning("fault injection: os._exit(%d) at %s", rule.exit_code, site)
            os._exit(rule.exit_code)
        if rule.action == "drop":
            raise ConnectionDropInjected(site, detail)
        raise FaultInjected(site, detail)


_REGISTRY: Optional[_Registry] = None


def hit(site: str, **context: Any) -> None:
    """Injection point: a no-op unless a plan is armed in this process."""
    registry = _REGISTRY
    if registry is None:
        return
    registry.hit(site, context)


def active() -> bool:
    """True when a plan is armed in this process."""
    return _REGISTRY is not None


def fired(site: str) -> int:
    """How many times any rule has fired at ``site`` (this process)."""
    registry = _REGISTRY
    return 0 if registry is None else registry.fired.get(site, 0)


def arm(plan: FaultPlan, propagate: bool = False) -> FaultPlan:
    """Arm ``plan`` in this process; optionally export it for spawns.

    With ``propagate=True`` the plan is also written to the
    ``REPRO_FAULTS`` environment variable so worker processes spawned
    *while it is set* self-arm (see :func:`load_from_env`).
    """
    global _REGISTRY
    _REGISTRY = _Registry(plan)
    if propagate:
        os.environ[ENV_VAR] = plan.to_json()
    return plan


def unpropagate() -> None:
    """Stop exporting the plan to new spawns (already-armed stay armed)."""
    os.environ.pop(ENV_VAR, None)


def disarm() -> None:
    """Disarm this process and stop exporting to spawns."""
    global _REGISTRY
    _REGISTRY = None
    unpropagate()


@contextmanager
def injected(plan: FaultPlan, propagate: bool = False) -> Iterator[FaultPlan]:
    """``with faults.injected(plan): ...`` — arm for the block, then disarm."""
    arm(plan, propagate=propagate)
    try:
        yield plan
    finally:
        disarm()


def load_from_env() -> bool:
    """Arm from ``REPRO_FAULTS`` if set (worker-process entry hook).

    Malformed values are ignored with a warning — a stale variable in a
    shell profile must not take down every pool worker.
    """
    blob = os.environ.get(ENV_VAR, "").strip()
    if not blob:
        return False
    try:
        plan = FaultPlan.from_json(blob)
    except (ValueError, KeyError, TypeError) as exc:
        logger.warning("ignoring malformed %s: %s", ENV_VAR, exc)
        return False
    arm(plan)
    return True
