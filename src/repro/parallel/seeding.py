"""Deterministic RNG spawning for sharded execution.

Every parallel path in this package must produce the same numbers no
matter how many workers executed it.  The rule that makes this possible:
randomness is keyed to the *unit of work* (a dataset chunk, a training
shard), never to the worker that happens to run it.  :func:`spawn_seeds`
is the single helper behind that rule — it turns one base seed into ``n``
independent child seeds via numpy's :class:`~numpy.random.SeedSequence`
spawning (the collision-resistant, stream-independent mechanism numpy
provides exactly for parallel RNG), so shard ``i`` draws from the same
stream whether it runs on worker 0 of 1 or worker 3 of 4.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["spawn_seeds"]


def spawn_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` independent child seeds derived from ``base_seed``.

    Deterministic in ``(base_seed, n)`` and nothing else.  Each child is
    a 64-bit integer suitable for :func:`numpy.random.default_rng`; the
    underlying :class:`~numpy.random.SeedSequence` spawn guarantees the
    child streams are pairwise independent (no overlap, no correlation),
    unlike ad-hoc ``base_seed + i`` offsets.
    """
    if n < 0:
        raise ValueError("cannot spawn a negative number of seeds")
    children = np.random.SeedSequence(int(base_seed)).spawn(int(n))
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]
