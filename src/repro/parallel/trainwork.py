"""Worker-side kernels of data-parallel physics-informed training.

Each worker holds a full replica of the :class:`~repro.core.DeepOHeat`
model (unpickled once at pool initialization) and, per iteration,
evaluates the physics loss and its parameter gradients on *its shard of
the sampled configurations*.  The parent samples everything (so the
iteration consumes the RNG stream exactly as serial training does),
broadcasts the current parameters, and reduces the shard gradients in a
fixed order — see :meth:`repro.core.trainer.Trainer.run`.

The collocation batch is broadcast under a token: fixed-mesh plans reuse
one batch object for the whole run, so it crosses the pipe once and the
replica's per-batch geometry cache (selections, dedup indices) stays hot
across iterations, exactly as in serial training.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "family_train_shard_step",
    "family_worker_init",
    "seed_worker",
    "train_shard_step",
    "train_worker_init",
]


def train_worker_init(model_blob: bytes) -> Dict:
    """Unpickle the model replica; the worker RNG arrives via :func:`seed_worker`."""
    from .. import autodiff as ad  # heavy import paid once per worker

    model = pickle.loads(model_blob)
    return {
        "ad": ad,
        "model": model,
        "params": model.net.parameters(),
        "rng": None,
        "batch": None,
        "batch_token": None,
    }


def seed_worker(state: Dict, seed: int) -> None:
    """Install this worker's RNG stream (one routed call after pool start).

    The seed (derived via :func:`~repro.parallel.seeding.spawn_seeds` in
    the parent) backs any worker-local stochastic operation; the current
    loss evaluation is deterministic given the broadcast samples, so it
    exists to keep future stochastic kernels (dropout-style residual
    sampling) reproducible per *shard*, not per worker schedule.
    """
    state["rng"] = np.random.default_rng(int(seed))


def train_shard_step(
    state: Dict,
    param_arrays: Sequence[np.ndarray],
    raws_shard: Sequence[np.ndarray],
    batch,
    batch_token: int,
    weights: Optional[Dict[str, float]],
    stacked: bool,
) -> Tuple[float, Dict[str, float], List[np.ndarray]]:
    """One shard's loss and parameter gradients at the given parameters.

    Returns ``(total_loss, loss_components, grad_arrays)`` for the shard
    — *unweighted*: the parent scales by the shard's share of the
    function batch and sums in shard order, so the reduction is bitwise
    deterministic for a fixed worker count.
    """
    ad = state["ad"]
    model = state["model"]
    params = state["params"]
    for param, array in zip(params, param_arrays):
        param.data[...] = array
    if batch is not None:
        state["batch"] = batch
        state["batch_token"] = batch_token
    elif state["batch_token"] != batch_token:
        raise RuntimeError(
            f"stale collocation batch in worker (have {state['batch_token']}, "
            f"need {batch_token})"
        )
    if weights is not None:
        model.builder.weights.clear()
        model.builder.weights.update(weights)
    total, parts = model.compute_loss(raws_shard, state["batch"], stacked=stacked)
    grads = ad.grad(total, params)
    return float(total.item()), parts, [grad.data for grad in grads]


def family_worker_init(models_blob: bytes) -> Dict:
    """Unpickle the member-model replicas for family training.

    All member models arrive in *one* pickle blob: pickle memoization
    preserves object identity across the list, so the replicas share
    one net in the worker exactly as they do in the parent — gradients
    for any member land on the same parameter arrays.
    """
    from .. import autodiff as ad  # heavy import paid once per worker

    models = pickle.loads(models_blob)
    return {
        "ad": ad,
        "models": models,
        "params": models[0].net.parameters(),
        "rng": None,
        "batch": None,
        "batch_token": None,
    }


def family_train_shard_step(
    state: Dict,
    member: int,
    param_arrays: Sequence[np.ndarray],
    raws_shard: Sequence[np.ndarray],
    batch,
    batch_token: int,
    stacked: bool,
) -> Tuple[float, Dict[str, float], List[np.ndarray]]:
    """One shard's loss/gradients for family member ``member``.

    Same contract as :func:`train_shard_step` — unweighted shard
    results, parent-side share-scaled reduction — but the loss comes
    from the selected member model (round-robin in the parent).  The
    batch changes every iteration (members interleave), so it is always
    broadcast rather than cached under a token.
    """
    ad = state["ad"]
    model = state["models"][member]
    params = state["params"]
    for param, array in zip(params, param_arrays):
        param.data[...] = array
    state["batch"] = batch
    state["batch_token"] = batch_token
    total, parts = model.compute_loss(raws_shard, batch, stacked=stacked)
    grads = ad.grad(total, params)
    return float(total.item()), parts, [grad.data for grad in grads]
