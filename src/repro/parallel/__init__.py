"""Parallel execution layer: process sharding, routed pools, seeded RNG.

Three levers, one package (ROADMAP item 2):

* **process-sharded solving** — :class:`~repro.fdm.SolveFarm` streams
  RHS blocks to a :class:`PersistentPool` whose workers own the SuperLU
  factorizations for "their" operator digests (:mod:`.farmwork`);
* **data-parallel training** — :class:`~repro.core.trainer.Trainer`
  evaluates configuration shards on worker-resident model replicas and
  reduces gradients in fixed order (:mod:`.trainwork`);
* **threaded batched BLAS** — the serving engine's chunked dgemm lives
  behind :mod:`repro.backend`, not here, because it is an array-module
  concern; this package supplies the *worker count plumbing* both share.

The shared knob is ``workers`` (:func:`resolve_workers`): ``None``
defers to the ``REPRO_WORKERS`` environment variable, ``0`` means all
cores, and every parallel path degenerates to the bitwise-identical
serial code when it resolves to 1.  Worker processes always resolve to
1 themselves, so parallel layers cannot nest.
"""

from .pool import (
    PersistentPool,
    RemoteError,
    WorkerCrashed,
    default_start_method,
    digest_owner,
    resolve_workers,
)
from .seeding import spawn_seeds

__all__ = [
    "PersistentPool",
    "RemoteError",
    "WorkerCrashed",
    "default_start_method",
    "digest_owner",
    "resolve_workers",
    "spawn_seeds",
]
