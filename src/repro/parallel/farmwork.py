"""Worker-side kernels of the sharded solve farm.

The division of labor (see :meth:`repro.fdm.SolveFarm.solve_many`):

* the **parent** owns problem objects, operator assembly and RHS
  assembly (problems carry design closures that cannot cross a process
  boundary, and both halves are cheap relative to factorization);
* each **worker** owns the *factorizations* for the operator digests
  routed to it — the expensive, memory-heavy artifacts.  An operator
  matrix is shipped to a worker at most once per digest; afterwards only
  ``(digest, RHS block)`` pairs stream across the pipe.

The iterative tiers extend the same contract: ``block_cg`` chunks run
against a worker-resident Jacobi-scaled CSR system (with an optional
worker-built SSOR preconditioner), and ``recycled`` chunks run against a
worker-resident scaled :class:`~repro.fdm.krylov.StencilCore` plus a
deflation basis the parent ships by version (:func:`install_basis`) —
only the ``(n, m)`` basis vectors cross the pipe; the worker recomputes
their operator images locally.

Every function here is a module-level callable taking the worker state
dict first, as :class:`~repro.parallel.pool.PersistentPool` requires.
Legacy-path numerics are bitwise-identical to the serial farm: the same
``splu(matrix.tocsc())`` factorization of the same matrix, the same
block back-substitution, the same block-CG recurrence.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse.linalg as spla

__all__ = [
    "solve_worker_init",
    "solve_chunk",
    "install_operator",
    "install_basis",
    "worker_digests",
]


def solve_worker_init() -> Dict:
    """Per-worker state: resident solver artifacts keyed by digest.

    ``factors`` / ``cg_systems`` back the legacy direct/CG paths;
    ``stencils`` holds scaled :class:`~repro.fdm.krylov.StencilCore`
    kernels, ``bases`` their deflation bases, and ``ssor`` cached SSOR
    preconditioner closures for the ``block_cg`` tier.
    """
    return {
        "factors": {},
        "factor_seconds": {},
        "cg_systems": {},
        "stencils": {},
        "bases": {},
        "ssor": {},
    }


def solve_chunk(
    state: Dict,
    key: str,
    matrix,
    method: str,
    block: np.ndarray,
    tol: float,
    max_iter: Optional[int],
    preconditioner: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray, float, bool]:
    """Solve one RHS block against the worker-resident operator ``key``.

    ``matrix`` accompanies the *first* block of a digest (the parent
    tracks which workers already hold which operators); subsequent calls
    pass ``None`` and hit the resident artifact.  Its type depends on
    ``method``: a CSR operator (``direct``), a Jacobi-scaled CSR system
    (``cg`` / ``block_cg``) or a scaled
    :class:`~repro.fdm.krylov.StencilCore` (``recycled``).  For the
    scaled methods the block arrives pre-scaled and the parent unscales
    the solution, so the worker never needs the scale vector.  Returns
    ``(solution_block, iterations, factor_seconds, freshly_installed)``.
    """
    if method == "direct":
        lu = state["factors"].get(key)
        fresh = lu is None
        if fresh:
            if matrix is None:
                raise RuntimeError(
                    f"operator {key[:16]} was never shipped to this worker"
                )
            start = time.perf_counter()
            lu = spla.splu(matrix.tocsc())
            state["factor_seconds"][key] = time.perf_counter() - start
            state["factors"][key] = lu
        solution = lu.solve(block)
        iterations = np.zeros(block.shape[1], dtype=np.int64)
        return solution, iterations, state["factor_seconds"][key], fresh

    if method == "cg":
        from ..fdm.farm import _block_cg

        system = state["cg_systems"].get(key)
        fresh = system is None
        if fresh:
            if matrix is None:
                raise RuntimeError(
                    f"scaled operator {key[:16]} was never shipped to this worker"
                )
            system = matrix.tocsr()
            state["cg_systems"][key] = system
        solution, iterations = _block_cg(system, block, tol=tol, max_iter=max_iter)
        return solution, iterations, 0.0, fresh

    if method == "block_cg":
        from ..fdm.krylov import block_pcg, ssor_preconditioner

        system = state["cg_systems"].get(key)
        fresh = system is None
        if fresh:
            if matrix is None:
                raise RuntimeError(
                    f"scaled operator {key[:16]} was never shipped to this worker"
                )
            system = matrix.tocsr()
            state["cg_systems"][key] = system
        precond = None
        if preconditioner == "ssor":
            precond = state["ssor"].get(key)
            if precond is None:
                precond = ssor_preconditioner(system)
                state["ssor"][key] = precond
        solution, iterations = block_pcg(
            lambda v: system @ v, block, tol=tol, max_iter=max_iter, precond=precond
        )
        return solution, iterations, 0.0, fresh

    if method == "recycled":
        from ..fdm.krylov import block_pcg

        core = state["stencils"].get(key)
        fresh = core is None
        if fresh:
            if matrix is None:
                raise RuntimeError(
                    f"stencil operator {key[:16]} was never shipped to this worker"
                )
            core = matrix
            state["stencils"][key] = core
        solution, iterations = block_pcg(
            core.apply,
            block,
            tol=tol,
            max_iter=max_iter,
            basis=state["bases"].get(key),
        )
        return solution, iterations, 0.0, fresh

    raise ValueError(f"unknown method {method!r}")


def install_operator(state: Dict, key: str, matrix, method: str) -> bool:
    """Eagerly (re)install an operator in this worker's resident cache.

    The warm-state replay half of pool self-healing: when a worker is
    respawned, the parent re-ships every operator the dead process held
    (it knows which ones via its ``_worker_has`` marks) through this
    call, so replayed and future ``solve_chunk`` tickets find the
    artifact resident exactly as they would have before the crash.  It
    is also the normal install path for ``recycled`` operators, because
    a deflation basis (:func:`install_basis`) can only land on a worker
    whose stencil is already resident.  Returns True when the install
    did work, False when the operator was already resident (idempotent —
    safe to replay).
    """
    if method == "direct":
        if key in state["factors"]:
            return False
        start = time.perf_counter()
        state["factors"][key] = spla.splu(matrix.tocsc())
        state["factor_seconds"][key] = time.perf_counter() - start
        return True
    if method in ("cg", "block_cg"):
        if key in state["cg_systems"]:
            return False
        state["cg_systems"][key] = matrix.tocsr()
        return True
    if method == "recycled":
        if key in state["stencils"]:
            return False
        state["stencils"][key] = matrix
        return True
    raise ValueError(f"unknown method {method!r}")


def install_basis(state: Dict, key: str, vectors: np.ndarray, version: int) -> int:
    """(Re)install the deflation basis for digest ``key``.

    The parent ships only the A-orthonormal vectors; their operator
    images are recomputed here against the resident scaled stencil
    (``m`` stencil actions — cheaper than shipping a second ``(n, m)``
    array).  Idempotent per version: re-installing the version already
    resident is a no-op, so crash-replayed install tickets are safe.
    Returns the resident basis version.
    """
    from ..fdm.krylov import RecycleBasis

    core = state["stencils"].get(key)
    if core is None:
        raise RuntimeError(
            f"cannot install a basis for {key[:16]}: stencil not resident "
            "(the parent must install_operator first)"
        )
    resident = state["bases"].get(key)
    if resident is not None and resident.version == int(version):
        return resident.version
    basis = RecycleBasis.from_vectors(vectors, core.apply, version=int(version))
    state["bases"][key] = basis
    return basis.version


def worker_digests(state: Dict) -> Dict[str, list]:
    """Digests resident in this worker (introspection for tests/CLIs).

    ``bases`` reports ``(digest, version)`` pairs so a respawn test can
    prove the replacement worker got the current basis back.
    """
    return {
        "factors": sorted(state["factors"]),
        "cg_systems": sorted(state["cg_systems"]),
        "stencils": sorted(state["stencils"]),
        "bases": sorted(
            (digest, basis.version) for digest, basis in state["bases"].items()
        ),
    }
