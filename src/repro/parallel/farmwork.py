"""Worker-side kernels of the sharded solve farm.

The division of labor (see :meth:`repro.fdm.SolveFarm.solve_many`):

* the **parent** owns problem objects, operator assembly and RHS
  assembly (problems carry design closures that cannot cross a process
  boundary, and both halves are cheap relative to factorization);
* each **worker** owns the *factorizations* for the operator digests
  routed to it — the expensive, memory-heavy artifacts.  An operator
  matrix is shipped to a worker at most once per digest; afterwards only
  ``(digest, RHS block)`` pairs stream across the pipe.

Every function here is a module-level callable taking the worker state
dict first, as :class:`~repro.parallel.pool.PersistentPool` requires.
Numerics are bitwise-identical to the serial farm: the same
``splu(matrix.tocsc())`` factorization of the same matrix, the same
block back-substitution, the same block-CG recurrence.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["solve_worker_init", "solve_chunk", "install_operator", "worker_digests"]


def solve_worker_init() -> Dict:
    """Per-worker state: factorization / CG-system caches by digest."""
    return {"factors": {}, "factor_seconds": {}, "cg_systems": {}}


def solve_chunk(
    state: Dict,
    key: str,
    matrix: Optional[sp.spmatrix],
    method: str,
    block: np.ndarray,
    tol: float,
    max_iter: Optional[int],
) -> Tuple[np.ndarray, np.ndarray, float, bool]:
    """Solve one RHS block against the worker-resident operator ``key``.

    ``matrix`` accompanies the *first* block of a digest (the parent
    tracks which workers already hold which operators); subsequent calls
    pass ``None`` and hit the resident factorization.  Returns
    ``(solution_block, iterations, factor_seconds, freshly_factorized)``.
    """
    if method == "direct":
        lu = state["factors"].get(key)
        fresh = lu is None
        if fresh:
            if matrix is None:
                raise RuntimeError(
                    f"operator {key[:16]} was never shipped to this worker"
                )
            start = time.perf_counter()
            lu = spla.splu(matrix.tocsc())
            state["factor_seconds"][key] = time.perf_counter() - start
            state["factors"][key] = lu
        solution = lu.solve(block)
        iterations = np.zeros(block.shape[1], dtype=np.int64)
        return solution, iterations, state["factor_seconds"][key], fresh

    if method == "cg":
        # ``matrix`` is the Jacobi-scaled SPD system; ``block`` arrives
        # already scaled and the solution is unscaled by the parent, so
        # the worker never needs the scale vector.
        from ..fdm.farm import _block_cg

        system = state["cg_systems"].get(key)
        fresh = system is None
        if fresh:
            if matrix is None:
                raise RuntimeError(
                    f"scaled operator {key[:16]} was never shipped to this worker"
                )
            system = matrix.tocsr()
            state["cg_systems"][key] = system
        solution, iterations = _block_cg(system, block, tol=tol, max_iter=max_iter)
        return solution, iterations, 0.0, fresh

    raise ValueError(f"unknown method {method!r}")


def install_operator(
    state: Dict, key: str, matrix: sp.spmatrix, method: str
) -> bool:
    """Eagerly (re)install an operator in this worker's resident cache.

    The warm-state replay half of pool self-healing: when a worker is
    respawned, the parent re-ships every operator the dead process held
    (it knows which ones via its ``_worker_has`` marks) through this
    call, so replayed and future ``solve_chunk`` tickets find the
    factorization resident exactly as they would have before the crash.
    Returns True when the install did work, False when the operator was
    already resident (idempotent — safe to replay).
    """
    if method == "direct":
        if key in state["factors"]:
            return False
        start = time.perf_counter()
        state["factors"][key] = spla.splu(matrix.tocsc())
        state["factor_seconds"][key] = time.perf_counter() - start
        return True
    if method == "cg":
        if key in state["cg_systems"]:
            return False
        state["cg_systems"][key] = matrix.tocsr()
        return True
    raise ValueError(f"unknown method {method!r}")


def worker_digests(state: Dict) -> Dict[str, list]:
    """Digests resident in this worker (introspection for tests/CLIs)."""
    return {
        "factors": sorted(state["factors"]),
        "cg_systems": sorted(state["cg_systems"]),
    }
