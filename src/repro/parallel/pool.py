"""Persistent worker-process pool with per-worker channels.

:class:`PersistentPool` is the process substrate under the sharded solve
farm and the data-parallel trainer.  It differs from
``concurrent.futures.ProcessPoolExecutor`` in the two ways those callers
need:

* **routed submission** — tasks go to a *specific* worker index, so a
  caller can maintain affinity (the farm keeps each operator digest's
  factorization resident in one worker; the trainer keeps a model
  replica per worker) instead of letting a scheduler scatter state;
* **stateful workers** — each worker runs an ``initializer`` once and
  threads the returned state object into every task function, so
  expensive per-worker setup (unpickling a model, allocating caches) is
  paid once per pool, not once per task.

Task functions must be module-level callables (pickled by reference —
the only requirement the ``spawn`` start method imposes).  Results come
back over per-worker pipes; :meth:`PersistentPool.result` surfaces
remote exceptions with the worker traceback attached, and a worker that
dies mid-task raises :class:`WorkerCrashed` instead — the signal callers
use to fall back to their serial paths.

Workers always see ``REPRO_WORKERS=1``: any library code they run that
consults :func:`resolve_workers` (a farm inside a trainer shard, say)
stays serial, so pools can never recurse into pools.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing as mp
import os
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

logger = logging.getLogger("repro.parallel")

__all__ = [
    "PersistentPool",
    "WorkerCrashed",
    "RemoteError",
    "resolve_workers",
    "digest_owner",
    "default_start_method",
]

#: set in worker processes so nested resolve_workers() calls stay serial.
_IN_WORKER = False


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count for a parallel-capable call site.

    ``None`` defers to the ``REPRO_WORKERS`` environment variable
    (absent/empty → 1, the serial default; ``0`` means "all available
    cores"); an explicit ``0`` or negative argument means "all available
    cores".  Inside a pool worker the answer is always 1, so parallel
    layers never nest.

    The environment variable is user input reaching deep call sites
    (pool constructors, thread fan-outs), so malformed values demote to
    the serial path with a warning instead of raising: a typo in a shell
    profile must not take down every library entry point.
    """
    if _IN_WORKER:
        return 1
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            logger.warning("REPRO_WORKERS=%r is not an integer; running serial", raw)
            return 1
        if workers < 0:
            logger.warning(
                "REPRO_WORKERS=%r is negative; running serial (use 0 for all cores)",
                raw,
            )
            return 1
    workers = int(workers)
    if workers <= 0:
        return max(1, os.cpu_count() or 1)
    return workers


def digest_owner(digest: str, workers: int) -> int:
    """Stable owner index for an operator digest.

    A pure function of ``(digest, workers)`` — independent of insertion
    order, call history or pool identity — so the same digest always
    lands on the same worker for a given pool size, keeping its cached
    factorization hot.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return int(digest[:16], 16) % int(workers)


def default_start_method() -> str:
    """``REPRO_MP_START`` override, else ``spawn``.

    ``spawn`` is the safe default everywhere (no fork-vs-threads hazards
    with BLAS pools, identical behavior across platforms and Python
    versions); ``fork`` can be opted into on Linux for faster pool
    startup when the process is known to be single-threaded.
    """
    return os.environ.get("REPRO_MP_START", "").strip() or "spawn"


class WorkerCrashed(RuntimeError):
    """A pool worker died (killed / segfault / lost pipe) mid-protocol."""


class RemoteError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback."""


def _worker_main(conn, initializer, init_args) -> None:
    """Worker loop: run the initializer, then serve (ticket, fn, args)."""
    global _IN_WORKER
    _IN_WORKER = True
    os.environ["REPRO_WORKERS"] = "1"  # nested call sites stay serial
    try:
        state = initializer(*init_args) if initializer is not None else None
    except BaseException:
        # Initialization failure: report it for the first ticket, then die.
        try:
            conn.send((None, False, traceback.format_exc()))
        finally:
            conn.close()
        return
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        ticket, fn, args = message
        try:
            result = fn(state, *args)
            conn.send((ticket, True, result))
        except BaseException:
            conn.send((ticket, False, traceback.format_exc()))
    conn.close()


class PersistentPool:
    """N long-lived workers, each addressable by index.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1).
    initializer / init_args:
        Module-level callable run once per worker; its return value is
        the worker's state object, passed as the first argument to every
        task function.  ``init_args`` must be picklable.
    start_method:
        multiprocessing start method; default per
        :func:`default_start_method`.
    """

    def __init__(
        self,
        workers: int,
        initializer: Optional[Callable] = None,
        init_args: Tuple = (),
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        method = start_method or default_start_method()
        ctx = mp.get_context(method)
        self.workers = int(workers)
        self.start_method = method
        self._procs: List[mp.process.BaseProcess] = []
        self._conns = []
        self._tickets = itertools.count()
        self._owner_of: Dict[int, int] = {}  # ticket -> worker index
        self._results: Dict[int, Tuple[bool, Any]] = {}
        self._closed = False
        for _ in range(self.workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, initializer, init_args),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return (not self._closed) and all(p.is_alive() for p in self._procs)

    def submit(self, worker: int, fn: Callable, *args) -> int:
        """Queue ``fn(state, *args)`` on ``worker``; returns a ticket."""
        if self._closed:
            raise WorkerCrashed("pool is closed")
        ticket = next(self._tickets)
        self._owner_of[ticket] = int(worker)
        try:
            self._conns[worker].send((ticket, fn, args))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(f"worker {worker} lost its pipe: {exc}") from exc
        return ticket

    def result(self, ticket: int, timeout: Optional[float] = None) -> Any:
        """Block until ``ticket``'s result arrives; raise remote failures.

        Raises :class:`RemoteError` for exceptions thrown by the task
        (with the worker traceback in the message) and
        :class:`WorkerCrashed` when the owning worker died before
        answering.
        """
        deadline = None if timeout is None else (time.monotonic() + timeout)
        worker = self._owner_of[ticket]
        while ticket not in self._results:
            conn = self._conns[worker]
            try:
                ready = conn.poll(0.05)
            except (BrokenPipeError, OSError) as exc:
                raise WorkerCrashed(
                    f"worker {worker} lost its pipe: {exc}"
                ) from exc
            if ready:
                try:
                    answered, ok, payload = conn.recv()
                except (EOFError, ConnectionResetError, OSError) as exc:
                    raise WorkerCrashed(
                        f"worker {worker} hung up mid-batch: {exc}"
                    ) from exc
                if answered is None:  # initializer failure report
                    raise RemoteError(
                        f"worker {worker} failed to initialize:\n{payload}"
                    )
                self._results[answered] = (ok, payload)
                continue
            if not self._procs[worker].is_alive():
                raise WorkerCrashed(
                    f"worker {worker} died (exitcode "
                    f"{self._procs[worker].exitcode}) before answering"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"ticket {ticket} timed out")
        ok, payload = self._results.pop(ticket)
        self._owner_of.pop(ticket, None)
        if not ok:
            raise RemoteError(
                f"task on worker {worker} raised:\n{payload}"
            )
        return payload

    def run_on(self, worker: int, fn: Callable, *args) -> Any:
        """submit + result in one call (convenience for sequential use)."""
        return self.result(self.submit(worker, fn, *args))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down (idempotent; never raises)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass

    def terminate_worker(self, worker: int) -> None:
        """Hard-kill one worker (test hook for crash-path coverage)."""
        self._procs[worker].kill()
        self._procs[worker].join(timeout=5.0)

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("alive" if self.alive else "broken")
        return (
            f"PersistentPool({self.workers} workers, {self.start_method}, {state})"
        )
