"""Persistent worker-process pool with per-worker channels.

:class:`PersistentPool` is the process substrate under the sharded solve
farm and the data-parallel trainer.  It differs from
``concurrent.futures.ProcessPoolExecutor`` in the two ways those callers
need:

* **routed submission** — tasks go to a *specific* worker index, so a
  caller can maintain affinity (the farm keeps each operator digest's
  factorization resident in one worker; the trainer keeps a model
  replica per worker) instead of letting a scheduler scatter state;
* **stateful workers** — each worker runs an ``initializer`` once and
  threads the returned state object into every task function, so
  expensive per-worker setup (unpickling a model, allocating caches) is
  paid once per pool, not once per task.

Task functions must be module-level callables (pickled by reference —
the only requirement the ``spawn`` start method imposes).  Results come
back over per-worker pipes; :meth:`PersistentPool.result` surfaces
remote exceptions with the worker traceback attached.

A worker that dies mid-protocol (killed / segfault / lost pipe) is
**healed in place** when ``auto_heal`` is on (the default): the pool
drains any answers still buffered in the dead worker's pipe, respawns
the process, invokes the ``on_respawn`` callback so the owner can replay
warm state (the farm re-ships resident operators), and resubmits only
the tickets that were genuinely lost — all transparently inside
``submit``/``result``.  Healing is bounded by a restart budget (at most
``restart_budget`` respawns inside a sliding ``restart_window``
seconds); once exhausted, :class:`WorkerCrashed` is raised and the
caller falls back to its serial path.  Callers whose replayed tasks are
not idempotent (the trainer's batch-token protocol) construct the pool
with ``auto_heal=False`` and drive :meth:`respawn_worker` /
:meth:`forget_pending` themselves.

Workers always see ``REPRO_WORKERS=1``: any library code they run that
consults :func:`resolve_workers` (a farm inside a trainer shard, say)
stays serial, so pools can never recurse into pools.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .. import faults

logger = logging.getLogger("repro.parallel")

__all__ = [
    "PersistentPool",
    "WorkerCrashed",
    "RemoteError",
    "resolve_workers",
    "digest_owner",
    "default_start_method",
]

#: set in worker processes so nested resolve_workers() calls stay serial.
_IN_WORKER = False


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count for a parallel-capable call site.

    ``None`` defers to the ``REPRO_WORKERS`` environment variable
    (absent/empty → 1, the serial default; ``0`` means "all available
    cores"); an explicit ``0`` or negative argument means "all available
    cores".  Inside a pool worker the answer is always 1, so parallel
    layers never nest.

    The environment variable is user input reaching deep call sites
    (pool constructors, thread fan-outs), so malformed values demote to
    the serial path with a warning instead of raising: a typo in a shell
    profile must not take down every library entry point.
    """
    if _IN_WORKER:
        return 1
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            logger.warning("REPRO_WORKERS=%r is not an integer; running serial", raw)
            return 1
        if workers < 0:
            logger.warning(
                "REPRO_WORKERS=%r is negative; running serial (use 0 for all cores)",
                raw,
            )
            return 1
    workers = int(workers)
    if workers <= 0:
        return max(1, os.cpu_count() or 1)
    return workers


def digest_owner(digest: str, workers: int) -> int:
    """Stable owner index for an operator digest.

    A pure function of ``(digest, workers)`` — independent of insertion
    order, call history or pool identity — so the same digest always
    lands on the same worker for a given pool size, keeping its cached
    factorization hot.  Respawned workers inherit the same index, which
    is what lets ``on_respawn`` re-ship exactly the digests the dead
    process owned.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return int(digest[:16], 16) % int(workers)


def default_start_method() -> str:
    """``REPRO_MP_START`` override, else ``spawn``.

    ``spawn`` is the safe default everywhere (no fork-vs-threads hazards
    with BLAS pools, identical behavior across platforms and Python
    versions); ``fork`` can be opted into on Linux for faster pool
    startup when the process is known to be single-threaded.
    """
    return os.environ.get("REPRO_MP_START", "").strip() or "spawn"


class WorkerCrashed(RuntimeError):
    """A pool worker died and could not (or must not) be healed.

    ``worker`` carries the crashed worker's index when known (manual
    healers respawn exactly that index instead of racing
    ``Process.is_alive()``, which may not have reaped the corpse yet).
    """

    def __init__(self, message: str, worker: Optional[int] = None):
        super().__init__(message)
        self.worker = worker


class RemoteError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback."""


def _worker_main(conn, index, initializer, init_args) -> None:
    """Worker loop: run the initializer, then serve (ticket, fn, args)."""
    global _IN_WORKER
    _IN_WORKER = True
    os.environ["REPRO_WORKERS"] = "1"  # nested call sites stay serial
    faults.load_from_env()
    try:
        state = initializer(*init_args) if initializer is not None else None
    except BaseException:
        # Initialization failure: report it for the first ticket, then die.
        try:
            conn.send((None, False, traceback.format_exc()))
        finally:
            conn.close()
        return
    task_count = 0
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        ticket, fn, args = message
        task = task_count
        task_count += 1
        try:
            faults.hit("pool.task", worker=index, task=task)
            result = fn(state, *args)
            conn.send((ticket, True, result))
        except BaseException:
            conn.send((ticket, False, traceback.format_exc()))
    conn.close()


class PersistentPool:
    """N long-lived workers, each addressable by index.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1).
    initializer / init_args:
        Module-level callable run once per worker; its return value is
        the worker's state object, passed as the first argument to every
        task function.  ``init_args`` must be picklable (they are kept
        for respawns, so they must stay valid for the pool's lifetime).
    start_method:
        multiprocessing start method; default per
        :func:`default_start_method`.
    auto_heal:
        Respawn dead workers transparently inside ``submit``/``result``
        and resubmit their lost tickets.  Turn off when replayed tasks
        are not idempotent; crashes then raise :class:`WorkerCrashed`
        and the caller drives :meth:`respawn_worker` itself.
    restart_budget / restart_window:
        At most ``restart_budget`` respawns inside any sliding
        ``restart_window``-second interval; beyond that,
        :meth:`respawn_worker` raises :class:`WorkerCrashed` (the
        give-up-to-serial signal).
    on_respawn:
        ``callback(pool, worker)`` invoked after a replacement worker
        finishes initializing but *before* lost tickets are resubmitted
        — the hook for replaying warm state the dead process held.
    """

    def __init__(
        self,
        workers: int,
        initializer: Optional[Callable] = None,
        init_args: Tuple = (),
        start_method: Optional[str] = None,
        auto_heal: bool = True,
        restart_budget: int = 3,
        restart_window: float = 60.0,
        on_respawn: Optional[Callable[["PersistentPool", int], None]] = None,
    ):
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        if restart_budget < 0:
            raise ValueError("restart_budget must be >= 0")
        if restart_window <= 0:
            raise ValueError("restart_window must be > 0")
        method = start_method or default_start_method()
        self._ctx = mp.get_context(method)
        self.workers = int(workers)
        self.start_method = method
        self.auto_heal = bool(auto_heal)
        self.restart_budget = int(restart_budget)
        self.restart_window = float(restart_window)
        self.respawns = 0  # lifetime respawn count (not window-scoped)
        self._on_respawn = on_respawn
        self._initializer = initializer
        self._init_args = init_args
        self._restart_times: Deque[float] = deque()
        self._procs: List[mp.process.BaseProcess] = []
        self._conns = []
        self._tickets = itertools.count()
        self._owner_of: Dict[int, int] = {}  # ticket -> worker index
        self._task_of: Dict[int, Tuple[Callable, Tuple]] = {}  # for replay
        self._results: Dict[int, Tuple[bool, Any]] = {}
        self._closed = False
        for index in range(self.workers):
            self._spawn(index)

    def _spawn(self, index: int) -> None:
        """Start (or replace) the worker process at ``index``."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, index, self._initializer, self._init_args),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if index < len(self._procs):
            self._procs[index] = proc
            self._conns[index] = parent_conn
        else:
            self._procs.append(proc)
            self._conns.append(parent_conn)

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether every worker process is still running."""
        return (not self._closed) and all(p.is_alive() for p in self._procs)

    def pending_for(self, worker: int) -> List[int]:
        """Outstanding tickets owned by ``worker`` (no collected result)."""
        return sorted(
            t
            for t, w in self._owner_of.items()
            if w == int(worker) and t not in self._results
        )

    def pool_stats(self) -> Dict[str, Any]:
        """Liveness/healing counters (schema shared with farm/serve stats)."""
        return {
            "workers": self.workers,
            "alive": sum(1 for p in self._procs if p.is_alive()),
            "respawns": self.respawns,
            "restart_budget": self.restart_budget,
            "restart_window_s": self.restart_window,
            "pending": sum(
                1 for t in self._owner_of if t not in self._results
            ),
            "closed": self._closed,
        }

    def submit(self, worker: int, fn: Callable, *args) -> int:
        """Queue ``fn(state, *args)`` on ``worker``; returns a ticket."""
        if self._closed:
            raise WorkerCrashed("pool is closed")
        ticket = next(self._tickets)
        self._owner_of[ticket] = int(worker)
        self._task_of[ticket] = (fn, args)
        try:
            self._conns[worker].send((ticket, fn, args))
        except (BrokenPipeError, OSError) as exc:
            # Healing resubmits every pending ticket on that worker —
            # including this one, which is already booked above.
            self._recover(worker, f"worker {worker} lost its pipe: {exc}")
        return ticket

    def result(self, ticket: int, timeout: Optional[float] = None) -> Any:
        """Block until ``ticket``'s result arrives; raise remote failures.

        Raises :class:`RemoteError` for exceptions thrown by the task
        (with the worker traceback in the message).  A dead worker is
        healed in place when ``auto_heal`` is on (the lost tickets are
        replayed and the wait continues); otherwise — or once the
        restart budget is exhausted — :class:`WorkerCrashed` is raised.
        """
        deadline = None if timeout is None else (time.monotonic() + timeout)
        worker = self._owner_of[ticket]
        while ticket not in self._results:
            conn = self._conns[worker]
            try:
                ready = conn.poll(0.05)
            except (BrokenPipeError, OSError) as exc:
                self._recover(worker, f"worker {worker} lost its pipe: {exc}")
                continue
            if ready:
                try:
                    answered, ok, payload = conn.recv()
                except (EOFError, ConnectionResetError, OSError) as exc:
                    self._recover(worker, f"worker {worker} hung up mid-batch: {exc}")
                    continue
                if answered is None:  # initializer failure report
                    raise RemoteError(
                        f"worker {worker} failed to initialize:\n{payload}"
                    )
                if answered in self._owner_of:  # drop stale/forgotten answers
                    self._results[answered] = (ok, payload)
                continue
            if not self._procs[worker].is_alive():
                self._recover(
                    worker,
                    f"worker {worker} died (exitcode "
                    f"{self._procs[worker].exitcode}) before answering",
                )
                continue
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"ticket {ticket} timed out")
        ok, payload = self._results.pop(ticket)
        self._owner_of.pop(ticket, None)
        self._task_of.pop(ticket, None)
        if not ok:
            raise RemoteError(f"task on worker {worker} raised:\n{payload}")
        return payload

    def run_on(self, worker: int, fn: Callable, *args) -> Any:
        """submit + result in one call (convenience for sequential use)."""
        return self.result(self.submit(worker, fn, *args))

    # ------------------------------------------------------------------
    # Self-healing
    def _recover(self, worker: int, reason: str) -> None:
        """Heal ``worker`` in place, or raise :class:`WorkerCrashed`."""
        if not self.auto_heal or self._closed:
            raise WorkerCrashed(reason, worker=worker)
        self.respawn_worker(worker, cause=reason)

    def _drain_conn(self, worker: int) -> None:
        """Collect answers still buffered in a dead worker's pipe.

        A worker that answered ticket T and died on T+1 left T's bytes
        in the pipe; harvesting them means T is not replayed.  Replay
        would also be *correct* (tasks are deterministic), just wasted
        work — and the in-flight guard in :meth:`result` would drop the
        duplicate answer anyway.
        """
        conn = self._conns[worker]
        while True:
            try:
                if not conn.poll(0):
                    return
                answered, ok, payload = conn.recv()
            except (EOFError, ConnectionResetError, BrokenPipeError, OSError):
                return
            if answered is not None and answered in self._owner_of:
                self._results[answered] = (ok, payload)

    def respawn_worker(self, worker: int, cause: str = "crash") -> None:
        """Replace a dead worker in place and replay its lost tickets.

        Enforces the restart budget: once ``restart_budget`` respawns
        have happened inside the sliding ``restart_window``, raises
        :class:`WorkerCrashed` with a structured message — the caller's
        signal to stop healing and fall back to serial.
        """
        if self._closed:
            raise WorkerCrashed("pool is closed")
        now = time.monotonic()
        while self._restart_times and now - self._restart_times[0] > self.restart_window:
            self._restart_times.popleft()
        if len(self._restart_times) >= self.restart_budget:
            message = (
                f"worker {worker} needs a respawn ({cause}) but the restart "
                f"budget is exhausted: {len(self._restart_times)} respawns in "
                f"the last {self.restart_window:g}s (budget {self.restart_budget}); "
                f"giving up on this pool"
            )
            logger.error("%s", message)
            raise WorkerCrashed(message, worker=worker)
        self._restart_times.append(now)
        self._drain_conn(worker)
        old = self._procs[worker]
        if old.is_alive():
            old.kill()
        old.join(timeout=5.0)
        try:
            self._conns[worker].close()
        except OSError:
            pass
        try:
            self._spawn(worker)
        except Exception as exc:
            raise WorkerCrashed(
                f"failed to respawn worker {worker}: {exc}", worker=worker
            ) from exc
        self.respawns += 1
        lost = self.pending_for(worker)
        logger.warning(
            "pool worker %d died (%s); respawned in place "
            "(lifetime respawn %d, %d/%d in window, replaying %d lost tickets)",
            worker,
            cause,
            self.respawns,
            len(self._restart_times),
            self.restart_budget,
            len(lost),
        )
        if self._on_respawn is not None:
            self._on_respawn(self, worker)
        for ticket in lost:
            fn, args = self._task_of[ticket]
            try:
                self._conns[worker].send((ticket, fn, args))
            except (BrokenPipeError, OSError) as exc:
                raise WorkerCrashed(
                    f"worker {worker} died again during ticket replay: {exc}",
                    worker=worker,
                ) from exc

    def heal_workers(self) -> List[int]:
        """Respawn every dead worker (manual-healing entry point).

        Returns the indices respawned.  Raises :class:`WorkerCrashed`
        when the restart budget is exhausted.  Meant for
        ``auto_heal=False`` pools, typically after
        :meth:`forget_pending` so no stale tickets are replayed.
        """
        healed = []
        for index, proc in enumerate(self._procs):
            if not proc.is_alive():
                self.respawn_worker(index, cause="found dead during heal")
                healed.append(index)
        return healed

    def forget_pending(self) -> int:
        """Drop all outstanding-ticket bookkeeping; returns the count.

        Late answers for forgotten tickets are discarded on receipt
        (see the in-flight guard in :meth:`result`), so a caller that
        retries a whole round of work — the trainer re-dispatching an
        iteration after a crash — starts from a clean slate.
        """
        pending = sum(1 for t in self._owner_of if t not in self._results)
        self._owner_of.clear()
        self._task_of.clear()
        self._results.clear()
        return pending

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down (idempotent; never raises)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass

    def terminate_worker(self, worker: int) -> None:
        """Hard-kill one worker (test hook for crash-path coverage)."""
        self._procs[worker].kill()
        self._procs[worker].join(timeout=5.0)

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("alive" if self.alive else "broken")
        return (
            f"PersistentPool({self.workers} workers, {self.start_method}, {state}, "
            f"{self.respawns} respawns)"
        )
