"""Declarative scenario spec: one JSON document per thermal workload.

A :class:`ThermalScenario` fully describes a DeepOHeat workload — chip
geometry, material, boundary conditions, the operator-input families the
branch nets consume, the network architecture, the collocation plan and
the training budget, plus an optional transient section — as plain data.
It serializes to/from JSON under a versioned schema with collected,
actionable validation errors, and :meth:`ThermalScenario.compile` lowers
it onto the existing execution stack (:class:`~repro.core.ChipConfig`,
:class:`~repro.core.DeepOHeat`, collocation plans,
:class:`~repro.core.TrainerConfig`) as an
:class:`~repro.core.presets.ExperimentSetup`.

Design rules
------------
* **Spec, not code.**  Everything a workload needs is a field; a new
  scenario (another HTC pair, a new pulse-trace mixture) is a new JSON
  file, not a new Python factory.
* **Bitwise-faithful lowering.**  ``compile()`` consumes the weight-init
  RNG in the exact order the legacy ``experiment_*`` factories did
  (branch nets in input order, then Fourier features, then the trunk),
  so a scenario transcribed from a preset builds the identical model.
* **Content-addressed identity.**  :meth:`content_digest` hashes the
  canonical JSON of every *physical and training* field — ``name``,
  ``description`` and the ``scale`` label are excluded — so two
  scenarios differing only in an HTC bound or a power family can never
  alias each other in a checkpoint registry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

SCHEMA_VERSION = 1

_FACE_NAMES = ("xmin", "xmax", "ymin", "ymax", "bottom", "top")
_BC_KINDS = ("adiabatic", "convection", "dirichlet")


class ScenarioValidationError(ValueError):
    """A scenario failed validation; ``errors`` lists every problem found."""

    def __init__(self, errors: Sequence[str]):
        self.errors = list(errors)
        super().__init__(
            "invalid scenario ({} error{}):\n  - {}".format(
                len(self.errors),
                "s" if len(self.errors) != 1 else "",
                "\n  - ".join(self.errors),
            )
        )


# ----------------------------------------------------------------------
# Strict-dict plumbing: every section rejects unknown keys with a path.
# ----------------------------------------------------------------------
def _take(data: Mapping, known: Sequence[str], path: str, errors: List[str]) -> Dict:
    """Copy ``data`` checking it is a mapping with only ``known`` keys."""
    if not isinstance(data, Mapping):
        errors.append(f"{path}: expected an object, got {type(data).__name__}")
        return {}
    unknown = sorted(set(data) - set(known))
    for key in unknown:
        errors.append(f"{path}: unknown field {key!r} (known: {', '.join(known)})")
    return {key: value for key, value in data.items() if key in known}


def _number(value, path: str, errors: List[str], default=None):
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        errors.append(f"{path}: expected a number, got {value!r}")
        return default
    return float(value)


def _integer(value, path: str, errors: List[str], default=None):
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        errors.append(f"{path}: expected an integer, got {value!r}")
        return default
    return int(value)


def _int_tuple(value, length: int, path: str, errors: List[str]):
    if value is None:
        return None
    if (not isinstance(value, (list, tuple)) or len(value) != length
            or any(isinstance(v, bool) or not isinstance(v, int) for v in value)):
        errors.append(f"{path}: expected {length} integers, got {value!r}")
        return None
    return tuple(int(v) for v in value)


def _float_tuple(value, length: int, path: str, errors: List[str]):
    if value is None:
        return None
    if (not isinstance(value, (list, tuple)) or len(value) != length
            or any(isinstance(v, bool) or not isinstance(v, (int, float))
                   for v in value)):
        errors.append(f"{path}: expected {length} numbers, got {value!r}")
        return None
    return tuple(float(v) for v in value)


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
@dataclass
class GeometrySpec:
    """Chip cuboid in millimetres (the paper's unit)."""

    size_mm: Tuple[float, float, float] = (1.0, 1.0, 0.5)
    origin_mm: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    def to_dict(self) -> Dict:
        """JSON-ready dict form."""
        return {"size_mm": list(self.size_mm), "origin_mm": list(self.origin_mm)}

    @classmethod
    def from_dict(cls, data, path: str, errors: List[str]) -> "GeometrySpec":
        """Parse from dict form, collecting errors instead of raising."""
        data = _take(data, ["size_mm", "origin_mm"], path, errors)
        size = _float_tuple(data.get("size_mm"), 3, f"{path}.size_mm", errors)
        origin = _float_tuple(data.get("origin_mm"), 3, f"{path}.origin_mm", errors)
        return cls(
            size_mm=size if size else (1.0, 1.0, 0.5),
            origin_mm=origin if origin else (0.0, 0.0, 0.0),
        )

    def validate(self, path: str, errors: List[str]) -> None:
        """Append human-actionable problems to ``errors``."""
        if any(v <= 0 for v in self.size_mm):
            errors.append(f"{path}.size_mm: all extents must be positive, "
                          f"got {list(self.size_mm)}")

    def build(self):
        """The concrete :class:`~repro.geometry.Cuboid` in SI metres."""
        from ..geometry import Cuboid

        return Cuboid.from_mm(self.origin_mm, self.size_mm)


@dataclass
class MaterialSpec:
    """Thermal conductivity field; ``uniform`` is the only kind so far."""

    kind: str = "uniform"
    conductivity: float = 0.1  # W/mK

    def to_dict(self) -> Dict:
        """JSON-ready dict form."""
        return {"kind": self.kind, "conductivity": self.conductivity}

    @classmethod
    def from_dict(cls, data, path: str, errors: List[str]) -> "MaterialSpec":
        """Parse from dict form, collecting errors instead of raising."""
        data = _take(data, ["kind", "conductivity"], path, errors)
        return cls(
            kind=data.get("kind", "uniform"),
            conductivity=_number(data.get("conductivity"), f"{path}.conductivity",
                                 errors, default=0.1),
        )

    def validate(self, path: str, errors: List[str]) -> None:
        """Append human-actionable problems to ``errors``."""
        if self.kind != "uniform":
            errors.append(f"{path}.kind: unknown material kind {self.kind!r} "
                          f"(known: uniform)")
        elif self.conductivity <= 0:
            errors.append(f"{path}.conductivity: must be positive, "
                          f"got {self.conductivity}")

    def build(self):
        """The concrete conductivity field."""
        from ..materials import UniformConductivity

        return UniformConductivity(self.conductivity)


@dataclass
class BoundarySpec:
    """One face's fixed boundary condition.

    Faces driven by an operator input (HTC sweeps etc.) carry the
    *base* condition here; the input re-stamps it per design.
    """

    kind: str = "adiabatic"
    htc: Optional[float] = None          # convection, W/m^2K
    temperature: Optional[float] = None  # dirichlet, K

    def to_dict(self) -> Dict:
        """JSON-ready dict form."""
        out: Dict = {"kind": self.kind}
        if self.htc is not None:
            out["htc"] = self.htc
        if self.temperature is not None:
            out["temperature"] = self.temperature
        return out

    @classmethod
    def from_dict(cls, data, path: str, errors: List[str]) -> "BoundarySpec":
        """Parse from dict form, collecting errors instead of raising."""
        data = _take(data, ["kind", "htc", "temperature"], path, errors)
        return cls(
            kind=data.get("kind", "adiabatic"),
            htc=_number(data.get("htc"), f"{path}.htc", errors),
            temperature=_number(data.get("temperature"), f"{path}.temperature",
                                errors),
        )

    def validate(self, path: str, errors: List[str]) -> None:
        """Append human-actionable problems to ``errors``."""
        if self.kind not in _BC_KINDS:
            errors.append(f"{path}.kind: unknown boundary kind {self.kind!r} "
                          f"(known: {', '.join(_BC_KINDS)})")
            return
        if self.kind == "convection" and (self.htc is None or self.htc <= 0):
            errors.append(f"{path}: convection needs a positive 'htc', "
                          f"got {self.htc!r}")
        if self.kind == "dirichlet" and self.temperature is None:
            errors.append(f"{path}: dirichlet needs a 'temperature' in kelvin")

    def build(self, t_ambient: float):
        """The concrete boundary-condition object."""
        from ..bc import AdiabaticBC, ConvectionBC, DirichletBC

        if self.kind == "adiabatic":
            return AdiabaticBC()
        if self.kind == "convection":
            return ConvectionBC(self.htc, t_ambient)
        return DirichletBC(self.temperature)


@dataclass
class VolumetricSourceSpec:
    """A fixed (non-varying) internal heat source.

    ``uniform_layer`` is Experiment B's 0.625 mW slab: ``thickness_mm``
    thick, centred at ``z_center_mm`` (chip mid-plane when null).
    """

    kind: str = "uniform_layer"
    total_power: float = 0.000625  # W
    thickness_mm: float = 0.05
    z_center_mm: Optional[float] = None

    def to_dict(self) -> Dict:
        """JSON-ready dict form."""
        return {
            "kind": self.kind,
            "total_power": self.total_power,
            "thickness_mm": self.thickness_mm,
            "z_center_mm": self.z_center_mm,
        }

    @classmethod
    def from_dict(cls, data, path: str, errors: List[str]) -> "VolumetricSourceSpec":
        """Parse from dict form, collecting errors instead of raising."""
        data = _take(data, ["kind", "total_power", "thickness_mm", "z_center_mm"],
                     path, errors)
        return cls(
            kind=data.get("kind", "uniform_layer"),
            total_power=_number(data.get("total_power"), f"{path}.total_power",
                                errors, default=0.000625),
            thickness_mm=_number(data.get("thickness_mm"), f"{path}.thickness_mm",
                                 errors, default=0.05),
            z_center_mm=_number(data.get("z_center_mm"), f"{path}.z_center_mm",
                                errors),
        )

    def validate(self, path: str, errors: List[str]) -> None:
        """Append human-actionable problems to ``errors``."""
        if self.kind != "uniform_layer":
            errors.append(f"{path}.kind: unknown source kind {self.kind!r} "
                          f"(known: uniform_layer)")
        elif self.thickness_mm <= 0:
            errors.append(f"{path}.thickness_mm: must be positive, "
                          f"got {self.thickness_mm}")

    def build(self, chip):
        """The concrete volumetric power source."""
        from ..power import UniformLayerPower

        z_mid = (float(chip.center[2]) if self.z_center_mm is None
                 else self.z_center_mm * 1e-3)
        half = self.thickness_mm * 1e-3 / 2.0
        footprint = float(chip.size[0] * chip.size[1])
        return UniformLayerPower((z_mid - half, z_mid + half),
                                 self.total_power, footprint)


@dataclass
class GRFSpec:
    """Gaussian-random-field sampling parameters of a map-valued input."""

    length_scale: float = 0.3
    variance: float = 1.0
    transform: str = "none"

    def to_dict(self) -> Dict:
        """JSON-ready dict form."""
        return {
            "length_scale": self.length_scale,
            "variance": self.variance,
            "transform": self.transform,
        }

    @classmethod
    def from_dict(cls, data, path: str, errors: List[str]) -> "GRFSpec":
        """Parse from dict form, collecting errors instead of raising."""
        data = _take(data, ["length_scale", "variance", "transform"], path, errors)
        return cls(
            length_scale=_number(data.get("length_scale"), f"{path}.length_scale",
                                 errors, default=0.3),
            variance=_number(data.get("variance"), f"{path}.variance", errors,
                             default=1.0),
            transform=data.get("transform", "none"),
        )

    def validate(self, path: str, errors: List[str]) -> None:
        """Append human-actionable problems to ``errors``."""
        if self.length_scale <= 0:
            errors.append(f"{path}.length_scale: must be positive, "
                          f"got {self.length_scale}")
        if self.transform not in ("none", "shift_nonneg", "abs", "softplus"):
            errors.append(f"{path}.transform: unknown transform "
                          f"{self.transform!r}")

    def build2d(self, shape):
        """The 2-D GRF input family."""
        from ..power import GaussianRandomField2D

        return GaussianRandomField2D(tuple(shape), length_scale=self.length_scale,
                                     variance=self.variance,
                                     transform=self.transform)

    def build3d(self, shape):
        """The volumetric GRF input family."""
        from ..power import GaussianRandomField3D

        return GaussianRandomField3D(tuple(shape), length_scale=self.length_scale,
                                     variance=self.variance,
                                     transform=self.transform)


@dataclass
class TraceFamilySpec:
    """Random power-trace mixture of a transient input."""

    kinds: Tuple[str, ...] = ("step", "ramp", "periodic")
    weights: Optional[Tuple[float, ...]] = None
    level_range: Tuple[float, float] = (0.2, 1.4)

    def to_dict(self) -> Dict:
        """JSON-ready dict form."""
        return {
            "kinds": list(self.kinds),
            "weights": list(self.weights) if self.weights is not None else None,
            "level_range": list(self.level_range),
        }

    @classmethod
    def from_dict(cls, data, path: str, errors: List[str]) -> "TraceFamilySpec":
        """Parse from dict form, collecting errors instead of raising."""
        data = _take(data, ["kinds", "weights", "level_range"], path, errors)
        kinds = data.get("kinds", ["step", "ramp", "periodic"])
        if (not isinstance(kinds, (list, tuple)) or not kinds
                or any(not isinstance(k, str) for k in kinds)):
            errors.append(f"{path}.kinds: expected a non-empty list of strings, "
                          f"got {kinds!r}")
            kinds = ["step", "ramp", "periodic"]
        weights = data.get("weights")
        if weights is not None:
            weights = _float_tuple(weights, len(kinds), f"{path}.weights", errors)
        level = _float_tuple(data.get("level_range"), 2, f"{path}.level_range",
                             errors) or (0.2, 1.4)
        return cls(kinds=tuple(kinds), weights=weights, level_range=level)

    def validate(self, path: str, errors: List[str]) -> None:
        """Append human-actionable problems to ``errors``."""
        from ..power.traces import TraceFamily

        unknown = sorted(set(self.kinds) - set(TraceFamily.KINDS))
        if unknown:
            errors.append(f"{path}.kinds: unknown trace kinds {unknown} "
                          f"(known: {', '.join(TraceFamily.KINDS)})")
        if self.level_range[0] >= self.level_range[1]:
            errors.append(f"{path}.level_range: need low < high, "
                          f"got {list(self.level_range)}")

    def build(self):
        """The concrete time-trace family."""
        from ..power.traces import TraceFamily

        return TraceFamily(kinds=self.kinds, weights=self.weights,
                           level_range=self.level_range)


@dataclass
class InputSpec:
    """One operator input (a branch-net coordinate of the function space).

    ``family`` selects the physics; the other fields parameterize it:

    ``power_map``
        2-D face power map (Experiment A): ``face``, ``map_shape`` (2),
        ``unit_flux``, ``grf``.
    ``htc``
        uniform face HTC (Experiment B): ``face``, ``low``, ``high``.
    ``htc_map``
        inhomogeneous face HTC: ``face``, ``map_shape`` (2), ``low``,
        ``high``, ``grf``.
    ``dirichlet``
        fixed-temperature set-point sweep: ``face``, ``low``, ``high``.
    ``volumetric_power_map``
        3-D power map: ``map_shape`` (3), ``unit_density``, ``grf``.
    ``transient_power_map``
        time-modulated 2-D map: ``face``, ``map_shape`` (2),
        ``n_time_sensors``, ``unit_flux``, ``grf``, ``traces``; the time
        horizon comes from the scenario's ``transient`` section.
    """

    family: str = "power_map"
    name: Optional[str] = None
    face: str = "top"
    map_shape: Optional[Tuple[int, ...]] = None
    unit_flux: float = 2500.0
    unit_density: float = 1.0e7
    low: float = 333.33
    high: float = 1000.0
    n_time_sensors: int = 12
    grf: GRFSpec = field(default_factory=GRFSpec)
    traces: TraceFamilySpec = field(default_factory=TraceFamilySpec)

    FAMILIES = ("power_map", "htc", "htc_map", "dirichlet",
                "volumetric_power_map", "transient_power_map")
    # Fields serialized per family (everything else stays at its default).
    _FIELDS = {
        "power_map": ("name", "face", "map_shape", "unit_flux", "grf"),
        "htc": ("name", "face", "low", "high"),
        "htc_map": ("name", "face", "map_shape", "low", "high", "grf"),
        "dirichlet": ("name", "face", "low", "high"),
        "volumetric_power_map": ("name", "map_shape", "unit_density", "grf"),
        "transient_power_map": ("name", "face", "map_shape", "n_time_sensors",
                                "unit_flux", "grf", "traces"),
    }

    def to_dict(self) -> Dict:
        """JSON-ready dict form."""
        out: Dict = {"family": self.family}
        for key in self._FIELDS.get(self.family, ()):
            value = getattr(self, key)
            if key in ("grf", "traces"):
                value = value.to_dict()
            elif key == "map_shape" and value is not None:
                value = list(value)
            out[key] = value
        return out

    @classmethod
    def from_dict(cls, data, path: str, errors: List[str]) -> "InputSpec":
        """Parse from dict form, collecting errors instead of raising."""
        if not isinstance(data, Mapping):
            errors.append(f"{path}: expected an object, got {type(data).__name__}")
            return cls()
        family = data.get("family")
        if family not in cls.FAMILIES:
            errors.append(f"{path}.family: unknown input family {family!r} "
                          f"(known: {', '.join(cls.FAMILIES)})")
            return cls()
        known = ("family",) + cls._FIELDS[family]
        data = _take(data, known, path, errors)
        spec = cls(family=family)
        spec.name = data.get("name")
        if "face" in cls._FIELDS[family]:
            spec.face = data.get("face", "top")
        shape_len = 3 if family == "volumetric_power_map" else 2
        if "map_shape" in cls._FIELDS[family]:
            spec.map_shape = _int_tuple(data.get("map_shape"), shape_len,
                                        f"{path}.map_shape", errors)
        spec.unit_flux = _number(data.get("unit_flux"), f"{path}.unit_flux",
                                 errors, default=2500.0)
        spec.unit_density = _number(data.get("unit_density"),
                                    f"{path}.unit_density", errors, default=1.0e7)
        spec.low = _number(data.get("low"), f"{path}.low", errors, default=333.33)
        spec.high = _number(data.get("high"), f"{path}.high", errors,
                            default=1000.0)
        spec.n_time_sensors = _integer(data.get("n_time_sensors"),
                                       f"{path}.n_time_sensors", errors,
                                       default=12)
        if "grf" in data:
            spec.grf = GRFSpec.from_dict(data["grf"], f"{path}.grf", errors)
        if "traces" in data:
            spec.traces = TraceFamilySpec.from_dict(data["traces"],
                                                    f"{path}.traces", errors)
        return spec

    def validate(self, path: str, errors: List[str]) -> None:
        """Append human-actionable problems to ``errors``."""
        fields = self._FIELDS.get(self.family)
        if fields is None:
            errors.append(f"{path}.family: unknown input family {self.family!r}")
            return
        if self.name is not None and (not isinstance(self.name, str)
                                      or not self.name):
            errors.append(f"{path}.name: must be a non-empty string or null")
        if "face" in fields:
            if self.face not in _FACE_NAMES:
                errors.append(f"{path}.face: unknown face {self.face!r} "
                              f"(known: {', '.join(_FACE_NAMES)})")
            elif (self.family in ("power_map", "htc_map", "transient_power_map")
                  and self.face not in ("top", "bottom")):
                errors.append(f"{path}.face: {self.family} inputs live on "
                              f"'top' or 'bottom', got {self.face!r}")
        if "map_shape" in fields:
            if self.map_shape is None:
                errors.append(f"{path}.map_shape: required for {self.family}")
            elif any(n < 2 for n in self.map_shape):
                errors.append(f"{path}.map_shape: need >= 2 sensors per axis, "
                              f"got {list(self.map_shape)}")
        if "low" in fields and self.low >= self.high:
            errors.append(f"{path}: need low < high, got "
                          f"[{self.low}, {self.high}]")
        if "n_time_sensors" in fields and self.n_time_sensors < 2:
            errors.append(f"{path}.n_time_sensors: need at least 2, "
                          f"got {self.n_time_sensors}")
        if "grf" in fields:
            self.grf.validate(f"{path}.grf", errors)
        if "traces" in fields:
            self.traces.validate(f"{path}.traces", errors)

    # -- lowering ------------------------------------------------------
    def _face(self):
        from ..geometry import Face

        return Face[self.face.upper()]

    def build(self, chip, t_ambient: float,
              transient: Optional["TransientSectionSpec"]):
        """The concrete operator-input family."""
        from ..core.encoding import (
            DirichletInput,
            HTCInput,
            HTCMapInput,
            PowerMapInput,
            TransientPowerMapInput,
            VolumetricPowerMapInput,
        )

        if self.family == "power_map":
            return PowerMapInput(
                chip=chip, face=self._face(), map_shape=self.map_shape,
                unit_flux=self.unit_flux, grf=self.grf.build2d(self.map_shape),
                name=self.name or "power_map",
            )
        if self.family == "htc":
            return HTCInput(self._face(), self.low, self.high,
                            t_ambient=t_ambient, name=self.name)
        if self.family == "htc_map":
            return HTCMapInput(
                chip, face=self._face(), map_shape=self.map_shape,
                low=self.low, high=self.high, t_ambient=t_ambient,
                grf=self.grf.build2d(self.map_shape), name=self.name,
            )
        if self.family == "dirichlet":
            return DirichletInput(self._face(), self.low, self.high,
                                  name=self.name)
        if self.family == "volumetric_power_map":
            return VolumetricPowerMapInput(
                chip, map_shape=self.map_shape, unit_density=self.unit_density,
                grf=self.grf.build3d(self.map_shape),
                name=self.name or "power_map_3d",
            )
        return TransientPowerMapInput(
            chip, horizon=transient.horizon, face=self._face(),
            map_shape=self.map_shape, n_time_sensors=self.n_time_sensors,
            unit_flux=self.unit_flux, grf=self.grf.build2d(self.map_shape),
            traces=self.traces.build(), name=self.name or "transient_power",
        )


@dataclass
class NetworkSpec:
    """MIONet architecture: per-input branch widths, Fourier trunk, q."""

    branch_hidden: Tuple[Tuple[int, ...], ...] = ((24, 24),)
    trunk_hidden: Tuple[int, ...] = (24, 24)
    q: int = 16
    fourier_frequencies: int = 8
    fourier_std: float = 1.0
    activation: str = "swish"

    def to_dict(self) -> Dict:
        """JSON-ready dict form."""
        return {
            "branch_hidden": [list(widths) for widths in self.branch_hidden],
            "trunk_hidden": list(self.trunk_hidden),
            "q": self.q,
            "fourier_frequencies": self.fourier_frequencies,
            "fourier_std": self.fourier_std,
            "activation": self.activation,
        }

    @classmethod
    def from_dict(cls, data, path: str, errors: List[str]) -> "NetworkSpec":
        """Parse from dict form, collecting errors instead of raising."""
        data = _take(data, ["branch_hidden", "trunk_hidden", "q",
                            "fourier_frequencies", "fourier_std", "activation"],
                     path, errors)

        def width_list(values, where):
            """Validated list of positive layer widths (default on error)."""
            if (not isinstance(values, (list, tuple)) or not values
                    or any(isinstance(w, bool) or not isinstance(w, int)
                           for w in values)):
                errors.append(f"{where}: expected a non-empty list of "
                              f"integer widths, got {values!r}")
                return (24, 24)
            return tuple(int(w) for w in values)

        branch = data.get("branch_hidden", [[24, 24]])
        if not isinstance(branch, (list, tuple)) or not branch:
            errors.append(f"{path}.branch_hidden: expected a list of width "
                          f"lists (one per input), got {branch!r}")
            branch = [[24, 24]]
        return cls(
            branch_hidden=tuple(
                width_list(widths, f"{path}.branch_hidden[{index}]")
                for index, widths in enumerate(branch)
            ),
            trunk_hidden=width_list(data.get("trunk_hidden", [24, 24]),
                                    f"{path}.trunk_hidden"),
            q=_integer(data.get("q"), f"{path}.q", errors, default=16),
            fourier_frequencies=_integer(data.get("fourier_frequencies"),
                                         f"{path}.fourier_frequencies", errors,
                                         default=8),
            fourier_std=_number(data.get("fourier_std"), f"{path}.fourier_std",
                                errors, default=1.0),
            activation=data.get("activation", "swish"),
        )

    def validate(self, path: str, errors: List[str], n_inputs: int) -> None:
        """Append human-actionable problems to ``errors``."""
        if len(self.branch_hidden) != n_inputs:
            errors.append(
                f"{path}.branch_hidden: {len(self.branch_hidden)} branch "
                f"stacks for {n_inputs} input(s) — one width list per input"
            )
        for index, widths in enumerate(self.branch_hidden):
            if any(w < 1 for w in widths):
                errors.append(f"{path}.branch_hidden[{index}]: widths must be "
                              f">= 1, got {list(widths)}")
        if any(w < 1 for w in self.trunk_hidden):
            errors.append(f"{path}.trunk_hidden: widths must be >= 1, "
                          f"got {list(self.trunk_hidden)}")
        if self.q < 1:
            errors.append(f"{path}.q: must be >= 1, got {self.q}")
        if self.fourier_frequencies < 1:
            errors.append(f"{path}.fourier_frequencies: must be >= 1, "
                          f"got {self.fourier_frequencies}")
        if self.fourier_std <= 0:
            errors.append(f"{path}.fourier_std: must be positive, "
                          f"got {self.fourier_std}")
        from ..nn.activations import activation_names

        if self.activation not in activation_names():
            errors.append(
                f"{path}.activation: unknown activation "
                f"{self.activation!r} (known: "
                f"{', '.join(activation_names())})"
            )


@dataclass
class CollocationSpec:
    """Where the physics residuals are enforced.

    ``mesh`` (fixed structured grid), ``random`` (fresh uniform draws,
    Experiment-B style) or ``transient`` (space-time cylinder + t=0).
    """

    kind: str = "mesh"
    grid: Tuple[int, int, int] = (5, 5, 4)          # mesh
    n_interior: int = 300                           # random / transient
    n_per_face: int = 40
    aligned: bool = True                            # random
    focus_band: Optional[Tuple[float, float, float]] = None
    n_initial: int = 128                            # transient

    KINDS = ("mesh", "random", "transient")
    _FIELDS = {
        "mesh": ("grid",),
        "random": ("n_interior", "n_per_face", "aligned", "focus_band"),
        "transient": ("n_interior", "n_per_face", "n_initial"),
    }

    def to_dict(self) -> Dict:
        """JSON-ready dict form."""
        out: Dict = {"kind": self.kind}
        for key in self._FIELDS.get(self.kind, ()):
            value = getattr(self, key)
            if key in ("grid", "focus_band") and value is not None:
                value = list(value)
            out[key] = value
        return out

    @classmethod
    def from_dict(cls, data, path: str, errors: List[str]) -> "CollocationSpec":
        """Parse from dict form, collecting errors instead of raising."""
        if not isinstance(data, Mapping):
            errors.append(f"{path}: expected an object, got {type(data).__name__}")
            return cls()
        kind = data.get("kind")
        if kind not in cls.KINDS:
            errors.append(f"{path}.kind: unknown collocation kind {kind!r} "
                          f"(known: {', '.join(cls.KINDS)})")
            return cls()
        data = _take(data, ("kind",) + cls._FIELDS[kind], path, errors)
        spec = cls(kind=kind)
        if kind == "mesh":
            grid = _int_tuple(data.get("grid"), 3, f"{path}.grid", errors)
            if grid:
                spec.grid = grid
        else:
            spec.n_interior = _integer(data.get("n_interior"),
                                       f"{path}.n_interior", errors, default=300)
            spec.n_per_face = _integer(data.get("n_per_face"),
                                       f"{path}.n_per_face", errors, default=40)
        if kind == "random":
            aligned = data.get("aligned", True)
            if not isinstance(aligned, bool):
                errors.append(f"{path}.aligned: expected true/false, "
                              f"got {aligned!r}")
                aligned = True
            spec.aligned = aligned
            spec.focus_band = _float_tuple(data.get("focus_band"), 3,
                                           f"{path}.focus_band", errors)
        if kind == "transient":
            spec.n_initial = _integer(data.get("n_initial"), f"{path}.n_initial",
                                      errors, default=128)
        return spec

    def validate(self, path: str, errors: List[str]) -> None:
        """Append human-actionable problems to ``errors``."""
        if self.kind not in self.KINDS:
            errors.append(f"{path}.kind: unknown collocation kind {self.kind!r}")
            return
        if self.kind == "mesh":
            if any(n < 2 for n in self.grid):
                errors.append(f"{path}.grid: need >= 2 nodes per axis, "
                              f"got {list(self.grid)}")
            return
        if self.n_interior < 1 or self.n_per_face < 1:
            errors.append(f"{path}: n_interior and n_per_face must be >= 1")
        if self.kind == "random" and self.focus_band is not None:
            z0, z1, fraction = self.focus_band
            if not (0.0 <= z0 < z1 <= 1.0 and 0.0 < fraction < 1.0):
                errors.append(f"{path}.focus_band: need [z0, z1, fraction] "
                              f"with 0 <= z0 < z1 <= 1 and 0 < fraction < 1, "
                              f"got {list(self.focus_band)}")
        if self.kind == "transient" and self.n_initial < 1:
            errors.append(f"{path}.n_initial: must be >= 1, "
                          f"got {self.n_initial}")

    def build(self, chip, nd, transient: Optional["TransientSectionSpec"]):
        """The concrete collocation configuration."""
        from ..core.sampler import (
            MeshCollocation,
            RandomCollocation,
            TransientCollocation,
        )
        from ..geometry import StructuredGrid

        if self.kind == "mesh":
            return MeshCollocation(StructuredGrid(chip, self.grid), nd)
        if self.kind == "random":
            return RandomCollocation(
                chip, nd, n_interior=self.n_interior,
                n_per_face=self.n_per_face, aligned=self.aligned,
                focus_band=self.focus_band,
            )
        return TransientCollocation(
            chip, nd, horizon=transient.horizon, n_interior=self.n_interior,
            n_per_face=self.n_per_face, n_initial=self.n_initial,
        )


@dataclass
class TrainingSpec:
    """Optimisation budget and schedule."""

    iterations: int = 700
    n_functions: int = 6
    learning_rate: float = 1e-3
    decay_rate: float = 0.9
    decay_every: int = 500
    seed: int = 0

    def to_dict(self) -> Dict:
        """JSON-ready dict form."""
        return {
            "iterations": self.iterations,
            "n_functions": self.n_functions,
            "learning_rate": self.learning_rate,
            "decay_rate": self.decay_rate,
            "decay_every": self.decay_every,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data, path: str, errors: List[str]) -> "TrainingSpec":
        """Parse from dict form, collecting errors instead of raising."""
        data = _take(data, ["iterations", "n_functions", "learning_rate",
                            "decay_rate", "decay_every", "seed"], path, errors)
        return cls(
            iterations=_integer(data.get("iterations"), f"{path}.iterations",
                                errors, default=700),
            n_functions=_integer(data.get("n_functions"), f"{path}.n_functions",
                                 errors, default=6),
            learning_rate=_number(data.get("learning_rate"),
                                  f"{path}.learning_rate", errors, default=1e-3),
            decay_rate=_number(data.get("decay_rate"), f"{path}.decay_rate",
                               errors, default=0.9),
            decay_every=_integer(data.get("decay_every"), f"{path}.decay_every",
                                 errors, default=500),
            seed=_integer(data.get("seed"), f"{path}.seed", errors, default=0),
        )

    def validate(self, path: str, errors: List[str]) -> None:
        """Append human-actionable problems to ``errors``."""
        if self.iterations < 1:
            errors.append(f"{path}.iterations: must be >= 1, "
                          f"got {self.iterations}")
        if self.n_functions < 1:
            errors.append(f"{path}.n_functions: must be >= 1, "
                          f"got {self.n_functions}")
        if self.learning_rate <= 0:
            errors.append(f"{path}.learning_rate: must be positive, "
                          f"got {self.learning_rate}")
        if self.decay_every < 1:
            errors.append(f"{path}.decay_every: must be >= 1, "
                          f"got {self.decay_every}")


@dataclass
class TransientSectionSpec:
    """Time scales of a transient workload (maps to ``TransientSpec``)."""

    rho_cp: float = 1.6e6    # J/(m^3 K)
    horizon: float = 4.0     # s
    ic_grid: Tuple[int, int, int] = (5, 5, 4)

    def to_dict(self) -> Dict:
        """JSON-ready dict form."""
        return {"rho_cp": self.rho_cp, "horizon": self.horizon,
                "ic_grid": list(self.ic_grid)}

    @classmethod
    def from_dict(cls, data, path: str, errors: List[str]) -> "TransientSectionSpec":
        """Parse from dict form, collecting errors instead of raising."""
        data = _take(data, ["rho_cp", "horizon", "ic_grid"], path, errors)
        ic_grid = _int_tuple(data.get("ic_grid"), 3, f"{path}.ic_grid", errors)
        return cls(
            rho_cp=_number(data.get("rho_cp"), f"{path}.rho_cp", errors,
                           default=1.6e6),
            horizon=_number(data.get("horizon"), f"{path}.horizon", errors,
                            default=4.0),
            ic_grid=ic_grid if ic_grid else (5, 5, 4),
        )

    def validate(self, path: str, errors: List[str]) -> None:
        """Append human-actionable problems to ``errors``."""
        if self.rho_cp <= 0:
            errors.append(f"{path}.rho_cp: must be positive, got {self.rho_cp}")
        if self.horizon <= 0:
            errors.append(f"{path}.horizon: must be positive, "
                          f"got {self.horizon}")
        if any(n < 2 for n in self.ic_grid):
            errors.append(f"{path}.ic_grid: need >= 2 nodes per axis, "
                          f"got {list(self.ic_grid)}")

    def build(self):
        """The concrete transient section."""
        from ..core.transient import TransientSpec

        return TransientSpec(rho_cp=self.rho_cp, horizon=self.horizon,
                             ic_grid_shape=tuple(self.ic_grid))


# ----------------------------------------------------------------------
# The scenario itself
# ----------------------------------------------------------------------
@dataclass
class ThermalScenario:
    """A fully-declarative thermal workload (see module docstring)."""

    name: str = "scenario"
    description: str = ""
    scale: str = "custom"
    schema_version: int = SCHEMA_VERSION
    t_ambient: float = 298.15
    dt_ref: float = 10.0
    seed: int = 0  # weight-init RNG seed
    geometry: GeometrySpec = field(default_factory=GeometrySpec)
    material: MaterialSpec = field(default_factory=MaterialSpec)
    boundaries: Dict[str, BoundarySpec] = field(default_factory=dict)
    volumetric_source: Optional[VolumetricSourceSpec] = None
    inputs: List[InputSpec] = field(default_factory=list)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    collocation: CollocationSpec = field(default_factory=CollocationSpec)
    training: TrainingSpec = field(default_factory=TrainingSpec)
    transient: Optional[TransientSectionSpec] = None
    loss_weights: Optional[Dict[str, float]] = None
    eval_grid: Tuple[int, int, int] = (13, 13, 9)

    _TOP_LEVEL = ("name", "description", "scale", "schema_version", "t_ambient",
                  "dt_ref", "seed", "geometry", "material", "boundaries",
                  "volumetric_source", "inputs", "network", "collocation",
                  "training", "transient", "loss_weights", "eval_grid")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-ready dict form."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "description": self.description,
            "scale": self.scale,
            "t_ambient": self.t_ambient,
            "dt_ref": self.dt_ref,
            "seed": self.seed,
            "geometry": self.geometry.to_dict(),
            "material": self.material.to_dict(),
            "boundaries": {face: bc.to_dict()
                           for face, bc in self.boundaries.items()},
            "volumetric_source": (self.volumetric_source.to_dict()
                                  if self.volumetric_source else None),
            "inputs": [spec.to_dict() for spec in self.inputs],
            "network": self.network.to_dict(),
            "collocation": self.collocation.to_dict(),
            "training": self.training.to_dict(),
            "transient": self.transient.to_dict() if self.transient else None,
            "loss_weights": (dict(self.loss_weights)
                             if self.loss_weights else None),
            "eval_grid": list(self.eval_grid),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ThermalScenario":
        """Parse + validate; raises :class:`ScenarioValidationError`."""
        errors: List[str] = []
        if not isinstance(data, Mapping):
            raise ScenarioValidationError(
                [f"scenario: expected a JSON object, got {type(data).__name__}"]
            )
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ScenarioValidationError([
                f"schema_version: this build reads version {SCHEMA_VERSION}, "
                f"got {version!r} — regenerate the scenario or upgrade repro"
            ])
        data = _take(data, cls._TOP_LEVEL, "scenario", errors)

        scenario = cls(schema_version=SCHEMA_VERSION)
        name = data.get("name")
        if not isinstance(name, str) or not name:
            errors.append("name: required (a non-empty string)")
        else:
            scenario.name = name
        scenario.description = data.get("description", "")
        scenario.scale = data.get("scale", "custom")
        scenario.t_ambient = _number(data.get("t_ambient"), "t_ambient", errors,
                                     default=298.15)
        scenario.dt_ref = _number(data.get("dt_ref"), "dt_ref", errors,
                                  default=10.0)
        scenario.seed = _integer(data.get("seed"), "seed", errors, default=0)
        if "geometry" in data:
            scenario.geometry = GeometrySpec.from_dict(data["geometry"],
                                                       "geometry", errors)
        boundaries = data.get("boundaries", {})
        if not isinstance(boundaries, Mapping):
            errors.append("boundaries: expected an object keyed by face name")
            boundaries = {}
        for face, bc_data in boundaries.items():
            if face not in _FACE_NAMES:
                errors.append(f"boundaries: unknown face {face!r} "
                              f"(known: {', '.join(_FACE_NAMES)})")
                continue
            scenario.boundaries[face] = BoundarySpec.from_dict(
                bc_data, f"boundaries.{face}", errors
            )
        if "material" in data:
            scenario.material = MaterialSpec.from_dict(data["material"],
                                                       "material", errors)
        if data.get("volumetric_source") is not None:
            scenario.volumetric_source = VolumetricSourceSpec.from_dict(
                data["volumetric_source"], "volumetric_source", errors
            )
        inputs = data.get("inputs", [])
        if not isinstance(inputs, (list, tuple)):
            errors.append("inputs: expected a list of input objects")
            inputs = []
        scenario.inputs = [
            InputSpec.from_dict(spec, f"inputs[{index}]", errors)
            for index, spec in enumerate(inputs)
        ]
        if "network" in data:
            scenario.network = NetworkSpec.from_dict(data["network"], "network",
                                                     errors)
        if "collocation" in data:
            scenario.collocation = CollocationSpec.from_dict(
                data["collocation"], "collocation", errors
            )
        if "training" in data:
            scenario.training = TrainingSpec.from_dict(data["training"],
                                                       "training", errors)
        if data.get("transient") is not None:
            scenario.transient = TransientSectionSpec.from_dict(
                data["transient"], "transient", errors
            )
        weights = data.get("loss_weights")
        if weights is not None:
            if (not isinstance(weights, Mapping)
                    or any(isinstance(v, bool) or not isinstance(v, (int, float))
                           for v in weights.values())):
                errors.append("loss_weights: expected an object of "
                              "component -> numeric weight")
            else:
                scenario.loss_weights = {str(k): float(v)
                                         for k, v in weights.items()}
        eval_grid = _int_tuple(data.get("eval_grid"), 3, "eval_grid", errors)
        if eval_grid:
            scenario.eval_grid = eval_grid

        errors.extend(scenario.validate())
        if errors:
            raise ScenarioValidationError(_dedupe(errors))
        return scenario

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialize to JSON text, optionally writing ``path``."""
        text = json.dumps(self.to_dict(), indent=2) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source: Union[str, Path]) -> "ThermalScenario":
        """Load from a JSON string or a ``.json`` file path."""
        if isinstance(source, Path) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            path = Path(source)
            try:
                text = path.read_text()
            except OSError as error:
                raise ScenarioValidationError(
                    [f"cannot read scenario file {path}: {error}"]
                ) from error
        else:
            text = source
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioValidationError(
                [f"invalid JSON: {error}"]
            ) from error
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> List[str]:
        """All semantic problems with this scenario (empty = valid)."""
        errors: List[str] = []
        if not self.name:
            errors.append("name: required (a non-empty string)")
        if self.dt_ref <= 0:
            errors.append(f"dt_ref: must be positive, got {self.dt_ref}")
        self.geometry.validate("geometry", errors)
        self.material.validate("material", errors)
        for face, bc in self.boundaries.items():
            if face not in _FACE_NAMES:
                errors.append(f"boundaries: unknown face {face!r}")
            else:
                bc.validate(f"boundaries.{face}", errors)
        if self.volumetric_source is not None:
            self.volumetric_source.validate("volumetric_source", errors)
        if not self.inputs:
            errors.append("inputs: need at least one operator input")
        names = []
        for index, spec in enumerate(self.inputs):
            spec.validate(f"inputs[{index}]", errors)
            names.append(spec.name or self._default_input_name(spec))
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            errors.append(f"inputs: duplicate input names {duplicates} — give "
                          f"each input a unique 'name'")
        self.network.validate("network", errors, n_inputs=len(self.inputs))
        self.collocation.validate("collocation", errors)
        self.training.validate("training", errors)
        if any(n < 2 for n in self.eval_grid):
            errors.append(f"eval_grid: need >= 2 nodes per axis, "
                          f"got {list(self.eval_grid)}")

        has_transient_input = any(spec.family == "transient_power_map"
                                  for spec in self.inputs)
        if self.transient is not None:
            self.transient.validate("transient", errors)
            if not has_transient_input:
                errors.append("transient: section present but no "
                              "'transient_power_map' input consumes it")
            if self.collocation.kind != "transient":
                errors.append("collocation.kind: transient scenarios need "
                              f"'transient' collocation, got "
                              f"{self.collocation.kind!r}")
        else:
            if has_transient_input:
                errors.append("transient: a 'transient_power_map' input needs "
                              "a transient section (rho_cp, horizon, ic_grid)")
            if self.collocation.kind == "transient":
                errors.append("collocation.kind: 'transient' collocation "
                              "needs a transient section")

        if not self._is_well_posed():
            errors.append(
                "boundaries: ill-posed — every face is adiabatic and no "
                "input drives a convection/dirichlet face; heat has no way "
                "out, so the steady problem has no unique solution"
            )
        return _dedupe(errors)

    @staticmethod
    def _default_input_name(spec: InputSpec) -> str:
        if spec.family == "power_map":
            return "power_map"
        if spec.family == "volumetric_power_map":
            return "power_map_3d"
        if spec.family == "transient_power_map":
            return "transient_power"
        prefix = {"htc": "htc", "htc_map": "htc_map",
                  "dirichlet": "tfix"}[spec.family]
        return f"{prefix}_{spec.face}"

    def _is_well_posed(self) -> bool:
        if any(bc.kind in ("convection", "dirichlet")
               for bc in self.boundaries.values()):
            return True
        return any(spec.family in ("htc", "htc_map", "dirichlet")
                   for spec in self.inputs)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def content_digest(self) -> str:
        """SHA-256 over the canonical JSON of every *content* field.

        ``name``, ``description`` and the ``scale`` label are excluded:
        they are labels, not physics, so renaming a scenario must not
        orphan its checkpoints — while any change to an HTC bound, a
        power family, a network width or a training budget produces a
        different digest (and therefore a different registry slot).
        """
        payload = self.to_dict()
        for label in ("name", "description", "scale"):
            payload.pop(label, None)
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def compile(self):
        """Lower onto the execution stack as an ``ExperimentSetup``.

        Raises :class:`ScenarioValidationError` when invalid.  RNG
        consumption order (branches in input order, Fourier features,
        trunk) matches the legacy preset factories bitwise.
        """
        errors = self.validate()
        if errors:
            raise ScenarioValidationError(errors)

        from ..core.configs import ChipConfig
        from ..core.model import DeepOHeat
        from ..core.presets import ExperimentSetup
        from ..core.trainer import TrainerConfig
        from ..geometry import Face, StructuredGrid
        from ..nn import MLP, FourierFeatures, MIONet, TrunkNet

        chip = self.geometry.build()
        bcs = {
            Face[face.upper()]: bc.build(self.t_ambient)
            for face, bc in self.boundaries.items()
        }
        config = ChipConfig(
            chip=chip,
            conductivity=self.material.build(),
            bcs=bcs,
            t_ambient=self.t_ambient,
        )
        if self.volumetric_source is not None:
            config = config.with_volumetric_power(
                self.volumetric_source.build(chip)
            )

        inputs = [
            spec.build(chip, self.t_ambient, self.transient)
            for spec in self.inputs
        ]

        rng = np.random.default_rng(self.seed)
        q = self.network.q
        branches = [
            MLP(
                [config_input.sensor_dim] + list(widths) + [q],
                activation=self.network.activation,
                rng=rng,
            )
            for config_input, widths in zip(inputs, self.network.branch_hidden)
        ]
        trunk_coords = 3 if self.transient is None else 4
        fourier = FourierFeatures(
            trunk_coords, self.network.fourier_frequencies,
            std=self.network.fourier_std, rng=rng,
        )
        trunk_mlp = MLP(
            [fourier.out_features] + list(self.network.trunk_hidden) + [q],
            activation=self.network.activation,
            rng=rng,
        )
        net = MIONet(branches, TrunkNet(trunk_mlp, fourier))

        model = DeepOHeat(
            config,
            inputs,
            net,
            dt_ref=self.dt_ref,
            loss_weights=dict(self.loss_weights) if self.loss_weights else None,
            transient=self.transient.build() if self.transient else None,
        )
        plan = self.collocation.build(chip, model.nd, self.transient)
        trainer_config = TrainerConfig(
            iterations=self.training.iterations,
            n_functions=self.training.n_functions,
            learning_rate=self.training.learning_rate,
            decay_rate=self.training.decay_rate,
            decay_every=self.training.decay_every,
            seed=self.training.seed,
        )
        return ExperimentSetup(
            name=self.name,
            scale=self.scale,
            model=model,
            plan=plan,
            trainer_config=trainer_config,
            eval_grid=StructuredGrid(chip, tuple(self.eval_grid)),
            description=self.description or f"scenario {self.name!r}",
            scenario=self,
        )


def _dedupe(errors: Sequence[str]) -> List[str]:
    seen = set()
    out = []
    for error in errors:
        if error not in seen:
            seen.add(error)
            out.append(error)
    return out
