"""ThermalService: one session façade over the whole lifecycle.

A :class:`ThermalService` fronts every operation the stack supports —
reference solving (shared-operator :class:`~repro.fdm.SolveFarm`),
physics-informed training with a digest-keyed checkpoint registry,
batched surrogate serving (:class:`~repro.engine.CompiledSurrogate`
engines sharing one trunk-feature cache) and transient rollouts —
behind typed response objects, keyed everywhere by the *content digest*
of a :class:`~repro.api.scenario.ThermalScenario`.

The digest keying is load-bearing: two scenarios that differ only in an
HTC bound, a power family or a training budget hash differently, so
they can never alias each other's checkpoints or compiled models —
while re-submitting the same JSON (even under a new ``name``) reuses
every cached artifact.
"""

from __future__ import annotations

import logging
import os
import re
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..nn.serialize import CheckpointCorrupt, read_checkpoint_meta
from .scenario import ScenarioValidationError, ThermalScenario

logger = logging.getLogger(__name__)

DEFAULT_CACHE_DIR = Path(
    os.environ.get(
        "REPRO_MODEL_CACHE",
        Path(__file__).resolve().parents[3] / ".model_cache",
    )
)

Design = Mapping[str, np.ndarray]


# ----------------------------------------------------------------------
# Typed responses
# ----------------------------------------------------------------------
@dataclass
class SolveResult:
    """FDM reference solve of one or more designs of a scenario."""

    scenario_name: str
    digest: str
    grid_shape: tuple
    designs: List[Dict[str, np.ndarray]]
    fields: np.ndarray             # (B, nx, ny, nz) kelvin
    peaks: np.ndarray              # (B,)
    injected_power: np.ndarray     # (B,) watts
    energy_imbalance: np.ndarray   # (B,) relative
    elapsed: float
    farm_stats: Dict[str, int]


@dataclass
class TrainResult:
    """Outcome of ``train``: freshly fitted or registry-loaded."""

    scenario_name: str
    digest: str
    checkpoint_path: Path
    from_cache: bool
    iterations: int
    final_loss: Optional[float] = None
    wall_time: Optional[float] = None


@dataclass
class PredictResult:
    """Batched steady surrogate evaluation."""

    scenario_name: str
    digest: str
    fields: np.ndarray   # (B, n_points) kelvin
    peaks: np.ndarray    # (B,)
    elapsed: float
    cache: Dict[str, int]


@dataclass
class RolloutResult:
    """Batched transient rollout over a shared time grid."""

    scenario_name: str
    digest: str
    times: np.ndarray        # (n_times,) seconds
    fields: np.ndarray       # (B, n_times, n_points) kelvin
    peak_traces: np.ndarray  # (B, n_times)
    elapsed: float
    cache: Dict[str, int]


@dataclass
class SweepChunk:
    """One streamed slice of a sweep (passed to ``on_chunk``)."""

    start: int
    stop: int
    peaks: np.ndarray  # (stop - start,)
    elapsed: float


@dataclass
class SweepValidation:
    """FDM cross-check of a sweep's outlier designs."""

    design_indices: np.ndarray   # into the sweep's design batch
    reference_peaks: np.ndarray
    peak_errors: np.ndarray      # |surrogate - FDM| kelvin
    worst_energy_imbalance: float
    elapsed: float
    farm_stats: Dict[str, int]


@dataclass
class SweepResult:
    """A full design-space sweep through the serving engine."""

    scenario_name: str
    digest: str
    n_designs: int
    chunk_size: int
    grid_shape: tuple
    raws: Dict[str, np.ndarray]  # stacked raw batches per input
    peaks: np.ndarray            # (n_designs,)
    elapsed: float
    cache: Dict[str, int]
    validation: Optional[SweepValidation] = None

    @property
    def throughput(self) -> float:
        """Designs per second over the sweep."""
        return self.n_designs / max(self.elapsed, 1e-12)

    def design(self, index: int) -> Dict[str, np.ndarray]:
        """Reconstruct one named design from the stacked raw batches."""
        return {name: batch[index] for name, batch in self.raws.items()}


@dataclass
class _Session:
    """Per-digest state the service keeps alive between calls."""

    scenario: ThermalScenario
    setup: object                       # ExperimentSetup
    engine: Optional[object] = None     # CompiledSurrogate
    trained: bool = False
    meta: Dict = field(default_factory=dict)


@dataclass
class _FamilySession:
    """Per-family-digest state (shared conditioned net + member setups)."""

    family: object                      # ScenarioFamily
    setup: object                       # FamilySetup
    engine: Optional[object] = None     # CompiledSurrogate (conditioned)
    trained: bool = False
    meta: Dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# Checkpoint registry
# ----------------------------------------------------------------------
class CheckpointRegistry:
    """Content-addressed checkpoint store.

    Files are named ``<slug>-<digest16>-v<version>.npz``: the digest is
    the key (so physics/training changes can never collide), the name is
    a sanitized human-readable prefix only, and the package version
    scopes the slot so a release that changes training semantics without
    touching any scenario field retrains instead of silently reusing a
    stale model.

    Loads are digest-verified: a checkpoint that fails sha256 payload
    verification (torn write, bit rot, tampering) is *quarantined* —
    renamed to ``<name>.corrupt`` so it stops matching :meth:`find` but
    stays on disk for postmortems — and the
    :class:`~repro.nn.CheckpointCorrupt` raised carries both paths.
    An in-progress training run additionally gets a *partial* slot
    (``<slug>-<digest16>-v<version>.train.npz``, see
    :meth:`train_state_path`) holding resumable trainer state; partial
    slots never satisfy :meth:`find` and are excluded from
    :meth:`entries`.
    """

    DIGEST_CHARS = 16

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    @staticmethod
    def _slug(name: str) -> str:
        """Filesystem-safe name prefix (scenario names are arbitrary)."""
        return re.sub(r"[^A-Za-z0-9._-]+", "_", name) or "scenario"

    def _key(self, scenario: ThermalScenario) -> str:
        from .. import __version__

        digest = scenario.content_digest()[: self.DIGEST_CHARS]
        return f"{digest}-v{__version__}.npz"

    def path_for(self, scenario: ThermalScenario) -> Path:
        """The canonical checkpoint path for this scenario."""
        return self.root / f"{self._slug(scenario.name)}-{self._key(scenario)}"

    def train_state_path(self, scenario: ThermalScenario) -> Path:
        """The *partial* slot: resumable trainer state for this digest.

        Lives next to the final slot but under ``….train.npz``, so
        :meth:`find` (which globs for ``…-<digest>-v<version>.npz``)
        can never mistake a half-trained snapshot for a finished model.
        """
        key = self._key(scenario)
        assert key.endswith(".npz")
        return self.root / (
            f"{self._slug(scenario.name)}-{key[:-len('.npz')]}.train.npz"
        )

    def find(self, scenario: ThermalScenario) -> Optional[Path]:
        """The stored checkpoint for this content digest, if any.

        Prefers the scenario's own name prefix but accepts any file
        carrying the digest — renaming a scenario must not orphan its
        checkpoint (the digest, not the label, is the key).
        """
        preferred = self.path_for(scenario)
        if preferred.exists():
            return preferred
        matches = sorted(self.root.glob(f"*-{self._key(scenario)}"))
        return matches[0] if matches else None

    def has(self, scenario: ThermalScenario) -> bool:
        """Whether a finished checkpoint exists for this digest."""
        return self.find(scenario) is not None

    def save(self, scenario: ThermalScenario, model,
             meta: Optional[Dict] = None,
             parent_digest: Optional[str] = None) -> Path:
        """Atomically write ``model`` (tmp + rename, payload sha256).

        ``parent_digest`` records checkpoint provenance in the lineage
        slot: the content digest of the checkpoint this one was warm
        started from (a family base for fine-tuned members, ``None``
        for roots trained from scratch).  :meth:`lineage` walks it.
        """
        return self._write_slot(self.path_for(scenario), scenario, model,
                                meta, parent_digest)

    def _write_slot(self, path: Path, scenario, model,
                    meta: Optional[Dict], parent_digest: Optional[str]
                    ) -> Path:
        """Shared atomic writer behind the final and fine-tuned slots."""
        self.root.mkdir(parents=True, exist_ok=True)
        meta = dict(meta or {})
        meta.setdefault("scenario_digest", scenario.content_digest())
        # Lineage slot: which checkpoint (if any) this one was
        # fine-tuned/resumed from — walked by lineage().
        meta.setdefault("lineage", {"parent_digest": parent_digest})
        # Write-then-rename: a crash (or a concurrent writer) mid-save
        # must never leave a truncated npz in the digest slot, where the
        # next find() would load it as a valid checkpoint.
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        written = model.save(tmp, meta=meta)
        os.replace(written, path)
        return path

    def quarantine(self, path: Union[str, Path]) -> Path:
        """Move a bad checkpoint aside (``<name>.corrupt``) and return it.

        The rename takes the file out of every future :meth:`find` /
        :meth:`entries` result while keeping the bytes on disk for
        inspection; an existing quarantine of the same name is
        overwritten (the newest corpse wins).
        """
        path = Path(path)
        target = path.with_name(path.name + ".corrupt")
        os.replace(path, target)
        return target

    def load(self, scenario: ThermalScenario, model) -> Dict:
        """Restore the stored checkpoint into ``model``; returns metadata.

        A checkpoint that fails digest verification (or otherwise does
        not deserialize into the model) is quarantined on disk and the
        re-raised :class:`~repro.nn.CheckpointCorrupt` records where it
        went — the caller's cue to retrain into the now-empty slot.
        """
        path = self.find(scenario)
        if path is None:
            raise FileNotFoundError(
                f"no checkpoint for digest "
                f"{scenario.content_digest()[:self.DIGEST_CHARS]} "
                f"in {self.root}"
            )
        try:
            return model.load(path)
        except CheckpointCorrupt as exc:
            quarantined = self.quarantine(path)
            raise CheckpointCorrupt(
                path, exc.reason, quarantined=quarantined
            ) from exc

    def entries(self) -> List[Path]:
        """Finished checkpoints only (partial ``.train.npz`` slots hidden)."""
        if not self.root.exists():
            return []
        return sorted(
            path
            for path in self.root.glob("*.npz")
            if not path.name.endswith(".train.npz")
        )

    # ------------------------------------------------------------------
    # Fine-tuned slots, family sidecars, lineage
    # ------------------------------------------------------------------
    def fine_tune_path(self, scenario: ThermalScenario) -> Path:
        """The *fine-tuned* slot for this digest (``….ft.npz``).

        A separate namespace from the final slot: :meth:`find` globs
        ``…-<digest>-v<version>.npz`` exactly, so a fine-tuned member
        can never shadow (or be shadowed by) a from-scratch checkpoint
        of the same scenario — callers choose which to prefer.
        """
        key = self._key(scenario)
        return self.root / (
            f"{self._slug(scenario.name)}-{key[:-len('.npz')]}.ft.npz"
        )

    def find_fine_tuned(self, scenario: ThermalScenario) -> Optional[Path]:
        """The stored fine-tuned checkpoint for this digest, if any."""
        preferred = self.fine_tune_path(scenario)
        if preferred.exists():
            return preferred
        key = self._key(scenario)
        matches = sorted(
            self.root.glob(f"*-{key[:-len('.npz')]}.ft.npz")
        )
        return matches[0] if matches else None

    def save_fine_tuned(self, scenario: ThermalScenario, model,
                        meta: Optional[Dict] = None,
                        parent_digest: Optional[str] = None) -> Path:
        """Atomically write a fine-tuned member into its ``.ft`` slot."""
        return self._write_slot(self.fine_tune_path(scenario), scenario,
                                model, meta, parent_digest)

    def family_spec_path(self, family) -> Path:
        """The JSON sidecar recording a family checkpoint's spec."""
        key = self._key(family)
        return self.root / (
            f"{self._slug(family.name)}-{key[:-len('.npz')]}.family.json"
        )

    def write_family_spec(self, family) -> Path:
        """Persist the family spec sidecar (atomic; idempotent).

        The sidecar is what makes :meth:`find_family_ancestor` possible
        across processes: a fresh registry can re-derive which families
        its checkpoints belong to without any in-memory state.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.family_spec_path(family)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(family.to_json())
        os.replace(tmp, path)
        return path

    def find_family_ancestor(self, scenario: ThermalScenario):
        """``(family, checkpoint_path)`` of a trained family covering this.

        Scans the family spec sidecars (sorted, so ties break
        deterministically), skipping unparseable specs and families
        whose checkpoint is missing.  Returns ``None`` when no trained
        family covers the scenario.
        """
        if not self.root.exists():
            return None
        from ..family import ScenarioFamily

        for spec_path in sorted(self.root.glob("*.family.json")):
            try:
                family = ScenarioFamily.from_json(spec_path)
            except (ScenarioValidationError, OSError):
                continue
            checkpoint = self.find(family)
            if checkpoint is None:
                continue
            if family.covers(scenario):
                return family, checkpoint
        return None

    def _find_by_digest(self, digest: str) -> Optional[Path]:
        """Any finished checkpoint carrying ``digest`` (any version/slot)."""
        short = digest[: self.DIGEST_CHARS]
        matches = sorted(
            path
            for path in self.root.glob(f"*-{short}-v*.npz")
            if not path.name.endswith(".train.npz")
        )
        return matches[0] if matches else None

    def lineage(self, scenario) -> List[Dict]:
        """The checkpoint provenance chain, child first, root last.

        Starts from the scenario's fine-tuned slot (falling back to the
        final slot) and follows ``lineage.parent_digest`` links through
        the registry.  Each entry is
        ``{"digest", "path", "parent_digest"}``.  An empty list means
        no checkpoint exists; a missing or cyclic parent raises
        :class:`~repro.nn.CheckpointCorrupt` — lineage metadata that
        cannot be walked is corruption, not a soft miss.
        """
        path = self.find_fine_tuned(scenario) or self.find(scenario)
        if path is None:
            return []
        chain: List[Dict] = []
        seen: set = set()
        while path is not None:
            if str(path) in seen:
                raise CheckpointCorrupt(
                    path, "cyclic checkpoint lineage (parent chain loops "
                    "back to an already-visited checkpoint)"
                )
            seen.add(str(path))
            meta = read_checkpoint_meta(path)
            digest = meta.get("scenario_digest")
            if digest is not None:
                if digest in seen:
                    raise CheckpointCorrupt(
                        path, f"cyclic checkpoint lineage at digest "
                        f"{digest[:self.DIGEST_CHARS]}…"
                    )
                seen.add(digest)
            parent = (meta.get("lineage") or {}).get("parent_digest")
            chain.append({
                "digest": digest,
                "path": str(path),
                "parent_digest": parent,
            })
            if parent is None:
                break
            path = self._find_by_digest(parent)
            if path is None:
                raise CheckpointCorrupt(
                    chain[-1]["path"],
                    f"parent checkpoint (digest "
                    f"{parent[:self.DIGEST_CHARS]}…) is missing from the "
                    f"registry",
                )
        return chain


# ----------------------------------------------------------------------
# The façade
# ----------------------------------------------------------------------
class ThermalService:
    """Session façade: solve / train / predict / rollout / sweep.

    Parameters
    ----------
    cache_dir:
        Checkpoint registry root (default: the package-level
        ``.model_cache``, overridable via ``REPRO_MODEL_CACHE``).
    farm:
        Shared-operator FDM solve farm; defaults to the process-wide
        farm, so reference solves reuse factorizations across services.
    trunk_cache_entries:
        Capacity of the session-wide trunk-feature cache every compiled
        engine shares (keys bind grid *and* weight digest, so scenarios
        sharing a query grid coexist safely).
    workers:
        Session-wide parallelism knob, threaded through every layer:
        reference solves shard across a process pool (the service then
        owns a private :class:`~repro.fdm.SolveFarm` rather than the
        shared default), training runs data-parallel, and serving
        threads its merge matmul.  ``None`` (default) defers each layer
        to the ``REPRO_WORKERS`` environment variable; results are
        identical for any value.  Call :meth:`close` to release the
        solve pool.
    memory_budget:
        Optional byte budget over the session's caches, split evenly
        between the trunk-feature cache and a *private* solve farm
        (byte-accounted LRU eviction on both — see their
        ``cache_stats()``).  This is what the serving daemon's
        ``--memory-budget`` flag sets; results are unchanged, only
        cache residency (and therefore recompute cost) varies.
    solver:
        Solver tier for every reference FDM solve the session issues
        (``"auto"`` / ``"lu"`` / ``"block_cg"`` / ``"recycled"``, see
        :meth:`repro.fdm.SolveFarm.solve_many` and ``docs/solvers.md``).
        ``None`` (default) keeps the farm's exact direct path.  With a
        ``memory_budget``, ``"auto"`` lets grids whose LU factorization
        cannot fit the budget degrade to the iterative tiers instead of
        thrashing the cache.

    A service is a context manager: ``with ThermalService(...) as s:``
    tears down the private farm pool, engines and caches exactly once
    on exit (:meth:`close` is idempotent).
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        farm=None,
        trunk_cache_entries: int = 16,
        workers: Optional[int] = None,
        memory_budget: Optional[int] = None,
        solver: Optional[str] = None,
    ):
        from ..engine import TrunkFeatureCache

        self.registry = CheckpointRegistry(
            Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
        )
        self._farm = farm
        self._owns_farm = False
        self.workers = workers
        self.solver = solver
        self.memory_budget = (
            None if memory_budget is None else int(memory_budget)
        )
        trunk_bytes = (
            None if self.memory_budget is None else max(1, self.memory_budget // 2)
        )
        self._trunk_cache = TrunkFeatureCache(trunk_cache_entries,
                                              max_bytes=trunk_bytes)
        self._sessions: Dict[str, _Session] = {}
        self._families: Dict[str, _FamilySession] = {}
        self._finetuned: Dict[str, _Session] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def farm(self):
        """The session's solve farm: private when budgeted, else shared."""
        if self._farm is None:
            if self.workers is not None or self.memory_budget is not None:
                from ..fdm import SolveFarm

                # A private farm: its worker pool (and the memory its
                # workers' factorizations hold) belongs to this session,
                # not to every other default-farm user in the process —
                # which is also what makes a byte budget enforceable.
                farm_bytes = (
                    None if self.memory_budget is None
                    else max(1, self.memory_budget // 2)
                )
                self._farm = SolveFarm(workers=self.workers,
                                       max_bytes=farm_bytes)
                self._owns_farm = True
                self._closed = False  # fresh resources, fresh teardown
            else:
                from ..fdm import get_default_farm

                self._farm = get_default_farm()
        return self._farm

    def close(self) -> None:
        """Tear the session down — idempotent, exactly-once.

        Releases the private farm's worker pool and cached
        factorizations (a farm passed in by the caller is left alone:
        they own its lifecycle), drops every per-scenario engine, and
        clears the shared trunk-feature cache.  Safe to call twice; a
        closed service can still be used, lazily rebuilding what it
        needs (the flag only guards the teardown itself).
        """
        if self._closed:
            return
        self._closed = True
        if self._farm is not None and self._owns_farm:
            if hasattr(self._farm, "close_pool"):
                self._farm.close_pool()
            self._farm = None
            self._owns_farm = False
        for entry in self._sessions.values():
            entry.engine = None
        for family_entry in self._families.values():
            family_entry.engine = None
        for ft_entry in self._finetuned.values():
            ft_entry.engine = None
        self._trunk_cache.clear()

    def __enter__(self) -> "ThermalService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def cache_stats(self) -> Dict[str, Dict]:
        """Per-cache counters (trunk features + solve farm), one shape.

        The daemon's ``/stats`` endpoint returns this verbatim; the
        ``farm`` half reads the *session's* farm without instantiating
        one (a service that never solved has no farm to report).
        """
        stats = {"trunk": self._trunk_cache.cache_stats()}
        if self._farm is not None and hasattr(self._farm, "cache_stats"):
            stats["farm"] = self._farm.cache_stats()
        return stats

    def session(self, scenario: ThermalScenario) -> _Session:
        """The per-digest session (compiling the scenario on first use)."""
        digest = scenario.content_digest()
        entry = self._sessions.get(digest)
        if entry is None:
            entry = _Session(scenario=scenario, setup=scenario.compile())
            self._sessions[digest] = entry
        return entry

    def setup(self, scenario: ThermalScenario):
        """The compiled :class:`~repro.core.presets.ExperimentSetup`."""
        return self.session(scenario).setup

    def engine(self, scenario: ThermalScenario):
        """The (trained) compiled serving engine for a scenario."""
        entry = self.session(scenario)
        if entry.engine is None:
            # Live view: weights loaded/trained later stay visible, and
            # the digest-keyed trunk cache invalidates transparently.
            entry.engine = entry.setup.model.compile_with_cache(
                self._trunk_cache, workers=self.workers
            )
        return entry.engine

    def sample_designs(
        self, scenario: ThermalScenario, n: int, seed: int = 0
    ) -> Dict[str, np.ndarray]:
        """Stacked raw design batches drawn from the input families."""
        entry = self.session(scenario)
        rng = np.random.default_rng(seed)
        return {
            config_input.name: config_input.sample(rng, n)
            for config_input in entry.setup.model.inputs
        }

    @staticmethod
    def _design_list(raws: Mapping[str, np.ndarray], n: int
                     ) -> List[Dict[str, np.ndarray]]:
        return [{name: batch[index] for name, batch in raws.items()}
                for index in range(n)]

    # ------------------------------------------------------------------
    # Solve (FDM reference)
    # ------------------------------------------------------------------
    def solve(
        self,
        scenario: ThermalScenario,
        designs: Optional[Sequence[Design]] = None,
        n_designs: int = 1,
        grid_shape: Optional[tuple] = None,
        seed: int = 0,
    ) -> SolveResult:
        """Reference-solve designs of a scenario through the solve farm.

        With ``designs=None``, ``n_designs`` random designs are sampled
        from the scenario's input families (seeded).  Transient
        scenarios solve their t=0 (initial-condition) problem.
        """
        entry = self.session(scenario)
        model = entry.setup.model
        if designs is None:
            raws = self.sample_designs(scenario, n_designs, seed=seed)
            designs = self._design_list(raws, n_designs)
        else:
            designs = [dict(design) for design in designs]
        grid = (entry.setup.eval_grid if grid_shape is None
                else self._grid(entry, grid_shape))

        start = time.perf_counter()
        problems = [
            model.concrete_config(design).heat_problem(grid)
            for design in designs
        ]
        solutions = self.farm.solve_many(problems, solver=self.solver)
        elapsed = time.perf_counter() - start

        return SolveResult(
            scenario_name=scenario.name,
            digest=scenario.content_digest(),
            grid_shape=tuple(grid.shape),
            designs=designs,
            fields=np.stack([solution.to_array() for solution in solutions]),
            peaks=np.asarray([solution.t_max for solution in solutions]),
            injected_power=np.asarray([
                solution.info["energy"].injected for solution in solutions
            ]),
            energy_imbalance=np.asarray([
                solution.info["energy"].relative_imbalance
                for solution in solutions
            ]),
            elapsed=elapsed,
            farm_stats=self.farm.cache_info(),
        )

    @staticmethod
    def _grid(entry: _Session, grid_shape: tuple):
        from ..geometry import StructuredGrid

        return StructuredGrid(entry.setup.model.config.chip, tuple(grid_shape))

    # ------------------------------------------------------------------
    # Train
    # ------------------------------------------------------------------
    def train(
        self,
        scenario: ThermalScenario,
        force_retrain: bool = False,
        verbose: bool = False,
        resume: bool = False,
        checkpoint_every: Optional[int] = None,
    ) -> TrainResult:
        """Train a scenario's surrogate, or load it from the registry.

        The registry keys on the scenario's *content digest*: any change
        to physics, architecture or budget lands in a fresh slot, and
        scenarios differing only by name share one.  A cached checkpoint
        that fails digest verification is quarantined and the scenario
        retrained into the slot — corruption self-heals instead of
        propagating garbage weights.

        ``checkpoint_every=N`` autosaves resumable trainer state into
        the registry's partial slot every N iterations;
        ``resume=True`` continues from that slot if present (bitwise
        identical to an uninterrupted run) and is a no-op fresh start
        otherwise.  The partial slot is deleted once the run finishes
        and the final checkpoint is saved.
        """
        entry = self.session(scenario)
        digest = scenario.content_digest()

        if not force_retrain and self.registry.has(scenario):
            try:
                meta = self.registry.load(scenario, entry.setup.model)
            except CheckpointCorrupt as exc:
                logger.warning(
                    "cached checkpoint for %s (digest %s) is corrupt: %s; "
                    "retraining into the slot",
                    scenario.name,
                    digest[: self.registry.DIGEST_CHARS],
                    exc,
                )
            else:
                path = self.registry.find(scenario)
                entry.trained = True
                entry.meta = dict(meta or {})
                final_loss = entry.meta.get("final_loss")
                wall_time = entry.meta.get("wall_time")
                return TrainResult(
                    scenario_name=scenario.name,
                    digest=digest,
                    checkpoint_path=path,
                    from_cache=True,
                    iterations=scenario.training.iterations,
                    final_loss=float(final_loss) if final_loss is not None else None,
                    wall_time=float(wall_time) if wall_time is not None else None,
                )

        trainer = entry.setup.make_trainer()
        if self.workers is not None:
            trainer.config.workers = self.workers
        if checkpoint_every is not None:
            trainer.config.checkpoint_every = int(checkpoint_every)
        train_state = None
        if resume or trainer.config.checkpoint_every:
            train_state = self.registry.train_state_path(scenario)
        try:
            history = trainer.run(
                verbose=verbose, checkpoint_path=train_state, resume=resume
            )
        except CheckpointCorrupt as exc:
            # The partial slot was torn (e.g. by the very crash we are
            # resuming from, pre-atomic-write).  load failures happen
            # before any weight restore, so a fresh start is safe.
            quarantined = (
                self.registry.quarantine(exc.path) if exc.path.exists() else None
            )
            logger.warning(
                "resumable trainer state for %s is corrupt: %s "
                "(quarantined to %s); restarting training from scratch",
                scenario.name,
                exc.reason,
                quarantined,
            )
            history = trainer.run(
                verbose=verbose, checkpoint_path=train_state, resume=False
            )
        meta = {
            "final_loss": history.final_loss,
            "wall_time": history.wall_time,
            "iterations": scenario.training.iterations,
        }
        path = self.registry.save(scenario, entry.setup.model, meta=meta)
        if train_state is not None:
            Path(train_state).unlink(missing_ok=True)
        entry.trained = True
        entry.meta = meta
        return TrainResult(
            scenario_name=scenario.name,
            digest=digest,
            checkpoint_path=path,
            from_cache=False,
            iterations=scenario.training.iterations,
            final_loss=history.final_loss,
            wall_time=history.wall_time,
        )

    def load_checkpoint(self, scenario: ThermalScenario,
                        path: Union[str, Path]) -> None:
        """Load explicit weights for a scenario (bypassing the registry)."""
        entry = self.session(scenario)
        entry.setup.model.load(path)
        entry.trained = True

    def _ensure_trained(self, scenario: ThermalScenario) -> _Session:
        entry = self.session(scenario)
        if not entry.trained:
            self.train(scenario)
        return entry

    # ------------------------------------------------------------------
    # Families: multi-scenario training, fine-tuning, lineage
    # ------------------------------------------------------------------
    def family_session(self, family) -> _FamilySession:
        """The per-family-digest session (compiling on first use)."""
        digest = family.content_digest()
        entry = self._families.get(digest)
        if entry is None:
            entry = _FamilySession(family=family, setup=family.compile())
            self._families[digest] = entry
        return entry

    def family_engine(self, family):
        """The compiled conditioned serving engine for a family.

        One engine serves *every* covered member: member identity rides
        in the ``scenario_conditioning`` design key (see
        :meth:`predict_member`), so requests for different members fuse
        on the engine's cached-trunk fast path exactly like same-member
        batches.
        """
        entry = self.family_session(family)
        if entry.engine is None:
            entry.engine = entry.setup.model.compile_with_cache(
                self._trunk_cache, workers=self.workers
            )
        return entry.engine

    def train_family(
        self,
        family,
        force_retrain: bool = False,
        verbose: bool = False,
        resume: bool = False,
        checkpoint_every: Optional[int] = None,
    ) -> TrainResult:
        """Train one conditioned surrogate across the family's members.

        Same registry contract as :meth:`train` — keyed by the
        *family's* content digest, with the same corrupt-quarantine
        self-healing and resumable partial slot — plus a
        ``<slug>-<digest>-….family.json`` sidecar recording the spec,
        which is what lets :meth:`CheckpointRegistry.find_family_ancestor`
        match covered scenarios to this checkpoint in later processes.
        """
        from ..family.trainer import FamilyTrainer

        entry = self.family_session(family)
        digest = family.content_digest()
        iterations = family.base.training.iterations

        if not force_retrain and self.registry.has(family):
            try:
                meta = self.registry.load(family, entry.setup.model)
            except CheckpointCorrupt as exc:
                logger.warning(
                    "cached family checkpoint for %s (digest %s) is corrupt: "
                    "%s; retraining into the slot",
                    family.name,
                    digest[: self.registry.DIGEST_CHARS],
                    exc,
                )
            else:
                self.registry.write_family_spec(family)
                path = self.registry.find(family)
                entry.trained = True
                entry.meta = dict(meta or {})
                final_loss = entry.meta.get("final_loss")
                wall_time = entry.meta.get("wall_time")
                return TrainResult(
                    scenario_name=family.name,
                    digest=digest,
                    checkpoint_path=path,
                    from_cache=True,
                    iterations=iterations,
                    final_loss=(float(final_loss)
                                if final_loss is not None else None),
                    wall_time=(float(wall_time)
                               if wall_time is not None else None),
                )

        trainer = FamilyTrainer(entry.setup)
        if self.workers is not None:
            trainer.config.workers = self.workers
        if checkpoint_every is not None:
            trainer.config.checkpoint_every = int(checkpoint_every)
        train_state = None
        if resume or trainer.config.checkpoint_every:
            train_state = self.registry.train_state_path(family)
        try:
            history = trainer.run(
                verbose=verbose, checkpoint_path=train_state, resume=resume
            )
        except CheckpointCorrupt as exc:
            quarantined = (
                self.registry.quarantine(exc.path) if exc.path.exists()
                else None
            )
            logger.warning(
                "resumable family trainer state for %s is corrupt: %s "
                "(quarantined to %s); restarting training from scratch",
                family.name,
                exc.reason,
                quarantined,
            )
            history = trainer.run(
                verbose=verbose, checkpoint_path=train_state, resume=False
            )
        meta = {
            "final_loss": history.final_loss,
            "wall_time": history.wall_time,
            "iterations": iterations,
            "family": {
                "name": family.name,
                "n_members": family.n_members,
                "member_digests": [
                    member.content_digest() for member in entry.setup.members
                ],
            },
        }
        path = self.registry.save(family, entry.setup.model, meta=meta)
        self.registry.write_family_spec(family)
        if train_state is not None:
            Path(train_state).unlink(missing_ok=True)
        entry.trained = True
        entry.meta = meta
        return TrainResult(
            scenario_name=family.name,
            digest=digest,
            checkpoint_path=path,
            from_cache=False,
            iterations=iterations,
            final_loss=history.final_loss,
            wall_time=history.wall_time,
        )

    def _ensure_family_trained(self, family) -> _FamilySession:
        entry = self.family_session(family)
        if not entry.trained:
            self.train_family(family)
        return entry

    def fine_tune(
        self,
        scenario: ThermalScenario,
        from_family,
        iterations: Optional[int] = None,
        force_retrain: bool = False,
        verbose: bool = False,
    ) -> TrainResult:
        """Fine-tune the family surrogate to one covered scenario.

        Warm-starts a *fresh* conditioned model from the family
        checkpoint (training the family first if needed — the family
        serving engine's weights are never mutated) and trains it on
        the target scenario alone.  The result lands in the scenario's
        ``.ft.npz`` registry slot with ``parent_digest`` set to the
        family's content digest, so :meth:`lineage` walks member →
        family.  ``iterations`` overrides the scenario's own training
        budget (the point of fine-tuning is needing far fewer).
        """
        family = from_family
        if not family.covers(scenario):
            raise ValueError(
                f"scenario {scenario.name!r} is outside family "
                f"{family.name!r}'s envelope; fine-tune targets must be "
                f"covered members"
            )
        from ..family.trainer import FamilySetup, FamilyTrainer

        digest = scenario.content_digest()
        cached = self._finetuned.get(digest)
        if cached is not None and not force_retrain:
            path = self.registry.find_fine_tuned(scenario)
            if path is not None:
                return TrainResult(
                    scenario_name=scenario.name,
                    digest=digest,
                    checkpoint_path=path,
                    from_cache=True,
                    iterations=int(cached.meta.get("iterations", 0)),
                    final_loss=cached.meta.get("final_loss"),
                    wall_time=cached.meta.get("wall_time"),
                )

        # A fresh compile gives fine-tuning its own net: the family
        # session (and any engine serving it) keeps its weights.
        fresh = family.compile()
        target = fresh.member_setup(scenario)

        ft_path = self.registry.find_fine_tuned(scenario)
        if ft_path is not None and not force_retrain:
            try:
                meta = target.model.load(ft_path)
            except CheckpointCorrupt as exc:
                quarantined = self.registry.quarantine(ft_path)
                logger.warning(
                    "fine-tuned checkpoint for %s is corrupt: %s "
                    "(quarantined to %s); re-fine-tuning into the slot",
                    scenario.name, exc.reason, quarantined,
                )
            else:
                session = _Session(scenario=scenario, setup=target,
                                   trained=True, meta=dict(meta or {}))
                self._finetuned[digest] = session
                return TrainResult(
                    scenario_name=scenario.name,
                    digest=digest,
                    checkpoint_path=ft_path,
                    from_cache=True,
                    iterations=int(session.meta.get("iterations", 0)),
                    final_loss=session.meta.get("final_loss"),
                    wall_time=session.meta.get("wall_time"),
                )

        if not self.registry.has(family):
            self.train_family(family, verbose=verbose)
        self.registry.load(family, target.model)

        config = replace(
            target.trainer_config,
            iterations=(int(iterations) if iterations is not None
                        else target.trainer_config.iterations),
        )
        if self.workers is not None:
            config.workers = self.workers
        ft_setup = FamilySetup(
            family=family,
            net=fresh.net,
            envelope_inputs=fresh.envelope_inputs,
            members=[scenario],
            setups=[target],
            trainer_config=config,
        )
        history = FamilyTrainer(ft_setup, config=config).run(verbose=verbose)
        meta = {
            "final_loss": history.final_loss,
            "wall_time": history.wall_time,
            "iterations": config.iterations,
        }
        path = self.registry.save_fine_tuned(
            scenario, target.model, meta=meta,
            parent_digest=family.content_digest(),
        )
        session = _Session(scenario=scenario, setup=target, trained=True,
                           meta=meta)
        self._finetuned[digest] = session
        return TrainResult(
            scenario_name=scenario.name,
            digest=digest,
            checkpoint_path=path,
            from_cache=False,
            iterations=config.iterations,
            final_loss=history.final_loss,
            wall_time=history.wall_time,
        )

    def predict_member(
        self,
        family,
        scenario: ThermalScenario,
        designs: Sequence[Design],
        grid_shape: Optional[tuple] = None,
        points_si: Optional[np.ndarray] = None,
        t: Optional[float] = None,
        prefer_fine_tuned: bool = True,
    ) -> PredictResult:
        """Serve a covered member scenario through the family surrogate.

        Injects the member's conditioning vector into every design and
        evaluates on the conditioned engine — the fine-tuned member
        checkpoint when one exists (and ``prefer_fine_tuned``), else
        the shared family engine (training the family on first use).
        """
        if not family.covers(scenario):
            raise ValueError(
                f"scenario {scenario.name!r} is outside family "
                f"{family.name!r}'s envelope"
            )
        if scenario.transient is not None and t is None:
            raise ValueError(
                "transient scenarios evaluate at an instant: pass t= "
                "(seconds)"
            )
        digest = scenario.content_digest()
        session = None
        if prefer_fine_tuned:
            session = self._finetuned.get(digest)
            if (session is None
                    and self.registry.find_fine_tuned(scenario) is not None):
                self.fine_tune(scenario, from_family=family)
                session = self._finetuned.get(digest)
        if session is not None:
            if session.engine is None:
                session.engine = session.setup.model.compile_with_cache(
                    self._trunk_cache, workers=self.workers
                )
            engine = session.engine
            setup = session.setup
        else:
            entry = self._ensure_family_trained(family)
            engine = self.family_engine(family)
            setup = entry.setup.setups[0]

        vector = family.conditioning_vector(scenario)
        conditioned = [
            {**dict(design), "scenario_conditioning": vector}
            for design in designs
        ]
        grid = None
        if points_si is None:
            if grid_shape is None:
                grid = setup.eval_grid
            else:
                from ..geometry import StructuredGrid

                grid = StructuredGrid(setup.model.config.chip,
                                      tuple(grid_shape))
        start = time.perf_counter()
        fields = engine.predict_batch(conditioned, grid=grid,
                                      points_si=points_si, t=t)
        elapsed = time.perf_counter() - start
        return PredictResult(
            scenario_name=scenario.name,
            digest=digest,
            fields=fields,
            peaks=fields.max(axis=1),
            elapsed=elapsed,
            cache=engine.cache_info()._asdict(),
        )

    def lineage(self, scenario) -> List[Dict]:
        """Checkpoint provenance chain for a scenario (child → root).

        Delegates to :meth:`CheckpointRegistry.lineage`; surfaced by
        ``repro info --json --config <scenario>``.
        """
        return self.registry.lineage(scenario)

    # ------------------------------------------------------------------
    # Predict / rollout (surrogate serving)
    # ------------------------------------------------------------------
    def predict(
        self,
        scenario: ThermalScenario,
        designs: Sequence[Design],
        grid_shape: Optional[tuple] = None,
        points_si: Optional[np.ndarray] = None,
        t: Optional[float] = None,
    ) -> PredictResult:
        """Batched surrogate evaluation (training on first use if needed).

        Steady scenarios evaluate on the eval grid (or ``grid_shape`` /
        ``points_si``); transient scenarios need an instant ``t`` in
        seconds (use :meth:`rollout` for whole trajectories).
        """
        entry = self._ensure_trained(scenario)
        if scenario.transient is not None and t is None:
            raise ValueError(
                "transient scenarios evaluate at an instant: pass t= "
                "(seconds) or use rollout() for full trajectories"
            )
        engine = self.engine(scenario)
        grid = None
        if points_si is None:
            grid = (entry.setup.eval_grid if grid_shape is None
                    else self._grid(entry, grid_shape))
        start = time.perf_counter()
        fields = engine.predict_batch(designs, grid=grid, points_si=points_si,
                                      t=t)
        elapsed = time.perf_counter() - start
        return PredictResult(
            scenario_name=scenario.name,
            digest=scenario.content_digest(),
            fields=fields,
            peaks=fields.max(axis=1),
            elapsed=elapsed,
            cache=engine.cache_info()._asdict(),
        )

    def rollout(
        self,
        scenario: ThermalScenario,
        designs: Sequence[Design],
        times: np.ndarray,
        grid_shape: Optional[tuple] = None,
        points_si: Optional[np.ndarray] = None,
    ) -> RolloutResult:
        """Batched transient rollout over a shared time grid (seconds)."""
        if scenario.transient is None:
            raise ValueError(
                "rollout needs a transient scenario; this one is steady "
                "(no 'transient' section)"
            )
        entry = self._ensure_trained(scenario)
        engine = self.engine(scenario)
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        grid = None
        if points_si is None:
            grid = (entry.setup.eval_grid if grid_shape is None
                    else self._grid(entry, grid_shape))
        start = time.perf_counter()
        fields = engine.predict_rollout(designs, times, grid=grid,
                                        points_si=points_si)
        elapsed = time.perf_counter() - start
        return RolloutResult(
            scenario_name=scenario.name,
            digest=scenario.content_digest(),
            times=times,
            fields=fields,
            peak_traces=fields.max(axis=2),
            elapsed=elapsed,
            cache=engine.cache_info()._asdict(),
        )

    # ------------------------------------------------------------------
    # Sweep (streaming serving + outlier validation)
    # ------------------------------------------------------------------
    def sweep(
        self,
        scenario: ThermalScenario,
        n_designs: int = 64,
        chunk_size: int = 16,
        seed: int = 0,
        validate: int = 0,
        grid_shape: Optional[tuple] = None,
        on_chunk: Optional[Callable[[SweepChunk], None]] = None,
    ) -> SweepResult:
        """Stream sampled designs through the engine in chunks.

        ``validate=N`` cross-checks the N hottest designs against the
        FDM farm (shared operator, one back-substitution each) and
        reports the surrogate's peak-temperature error on them.
        """
        if scenario.transient is not None:
            raise ValueError(
                "sweep serves steady scenarios; use rollout() for "
                "transient trajectories"
            )
        entry = self._ensure_trained(scenario)
        engine = self.engine(scenario)
        n_designs = max(1, int(n_designs))
        chunk_size = max(1, int(chunk_size))
        grid = (entry.setup.eval_grid if grid_shape is None
                else self._grid(entry, grid_shape))
        raws = self.sample_designs(scenario, n_designs, seed=seed)
        engine.warmup(grid)

        start = time.perf_counter()
        peaks = []
        for lo in range(0, n_designs, chunk_size):
            hi = min(n_designs, lo + chunk_size)
            chunk_start = time.perf_counter()
            fields = engine.predict_batch(
                {name: batch[lo:hi] for name, batch in raws.items()},
                grid=grid,
            )
            chunk_peaks = fields.max(axis=1)
            peaks.append(chunk_peaks)
            if on_chunk is not None:
                on_chunk(SweepChunk(
                    start=lo, stop=hi, peaks=chunk_peaks,
                    elapsed=time.perf_counter() - chunk_start,
                ))
        elapsed = time.perf_counter() - start
        peaks = np.concatenate(peaks)

        validation = None
        if validate > 0:
            validation = self._validate_outliers(
                entry, raws, peaks, min(int(validate), n_designs), grid
            )
        return SweepResult(
            scenario_name=scenario.name,
            digest=scenario.content_digest(),
            n_designs=n_designs,
            chunk_size=chunk_size,
            grid_shape=tuple(grid.shape),
            raws=raws,
            peaks=peaks,
            elapsed=elapsed,
            cache=engine.cache_info()._asdict(),
            validation=validation,
        )

    def _validate_outliers(self, entry: _Session, raws, peaks,
                           n_validate: int, grid) -> SweepValidation:
        model = entry.setup.model
        hottest = np.argsort(peaks)[::-1][:n_validate]
        problems = [
            model.concrete_config(
                {name: batch[index] for name, batch in raws.items()}
            ).heat_problem(grid)
            for index in hottest
        ]
        start = time.perf_counter()
        references = self.farm.solve_many(problems, solver=self.solver)
        elapsed = time.perf_counter() - start
        reference_peaks = np.asarray([ref.t_max for ref in references])
        return SweepValidation(
            design_indices=hottest,
            reference_peaks=reference_peaks,
            peak_errors=np.abs(reference_peaks - peaks[hottest]),
            worst_energy_imbalance=max(
                abs(ref.info["energy"].relative_imbalance)
                for ref in references
            ),
            elapsed=elapsed,
            farm_stats=self.farm.cache_info(),
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"ThermalService({len(self._sessions)} scenario session(s), "
            f"registry={self.registry.root})"
        )
