"""Declarative scenario API: the stable front door to the whole stack.

Two ideas:

* :class:`ThermalScenario` — a versioned, JSON-serializable spec that
  *fully describes* a workload (geometry, materials, boundary
  conditions, operator-input families, network, collocation, training
  budget, optional transient section) and compiles onto the execution
  stack.  New workloads are config files, not code.
* :class:`ThermalService` — a session façade fronting the lifecycle
  behind typed responses: ``solve`` (shared-operator FDM farm),
  ``train`` (content-digest-keyed checkpoint registry), ``predict`` /
  ``rollout`` (batched compiled engines sharing one trunk cache) and
  ``sweep`` (streaming, with FDM validation of outliers).

Quickstart::

    from repro.api import ThermalService, scenario_experiment_a

    service = ThermalService()
    scenario = scenario_experiment_a(scale="test")
    service.train(scenario)                      # or registry hit
    result = service.sweep(scenario, n_designs=64, validate=2)
    print(result.peaks.max(), result.validation.peak_errors.max())

The four paper presets are exposed as scenario builders
(:func:`scenario_experiment_a` …); ``ThermalScenario.from_json`` loads
arbitrary scenarios (see ``examples/scenarios/``).
"""

from .presets import (
    preset_inventory,
    scenario_experiment_a,
    scenario_experiment_b,
    scenario_experiment_transient,
    scenario_experiment_volumetric,
    scenario_for,
    scenario_names,
)
from .scenario import (
    SCHEMA_VERSION,
    BoundarySpec,
    CollocationSpec,
    GeometrySpec,
    GRFSpec,
    InputSpec,
    MaterialSpec,
    NetworkSpec,
    ScenarioValidationError,
    ThermalScenario,
    TraceFamilySpec,
    TrainingSpec,
    TransientSectionSpec,
    VolumetricSourceSpec,
)
from ..nn.serialize import CheckpointCorrupt
from .service import (
    DEFAULT_CACHE_DIR,
    CheckpointRegistry,
    PredictResult,
    RolloutResult,
    SolveResult,
    SweepChunk,
    SweepResult,
    SweepValidation,
    ThermalService,
    TrainResult,
)

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "BoundarySpec",
    "CheckpointCorrupt",
    "CheckpointRegistry",
    "CollocationSpec",
    "GRFSpec",
    "GeometrySpec",
    "InputSpec",
    "MaterialSpec",
    "NetworkSpec",
    "PredictResult",
    "RolloutResult",
    "ScenarioValidationError",
    "SolveResult",
    "SweepChunk",
    "SweepResult",
    "SweepValidation",
    "ThermalScenario",
    "ThermalService",
    "TraceFamilySpec",
    "TrainResult",
    "TrainingSpec",
    "TransientSectionSpec",
    "VolumetricSourceSpec",
    "preset_inventory",
    "scenario_experiment_a",
    "scenario_experiment_b",
    "scenario_experiment_transient",
    "scenario_experiment_volumetric",
    "scenario_for",
    "scenario_names",
]
