"""Scenario builders for the paper's workload families, at three scales.

These produce :class:`~repro.api.scenario.ThermalScenario` *specs* — the
declarative form of what ``repro.core.presets`` used to construct
imperatively.  The legacy ``experiment_*`` factories are now thin
deprecation shims over these builders (``scenario_*(...).compile()``),
so the spec path and the legacy path are one code path.

``scale="paper"`` reproduces the reported architecture and budget
exactly; ``scale="ci"`` is the bench default; ``scale="test"`` runs in
seconds for unit tests.  The volumetric and transient families have no
paper-scale variant (the paper never ran them).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .scenario import (
    BoundarySpec,
    CollocationSpec,
    GeometrySpec,
    GRFSpec,
    InputSpec,
    MaterialSpec,
    NetworkSpec,
    ThermalScenario,
    TraceFamilySpec,
    TrainingSpec,
    TransientSectionSpec,
    VolumetricSourceSpec,
)

T_AMB = 298.15

_SIDES = ("xmin", "xmax", "ymin", "ymax")


_SCALES_A: Dict[str, Dict] = {
    # branch widths exclude the sensor-input layer; trunk widths exclude
    # the Fourier layer. q = shared output feature width.  fourier_std is
    # the paper's 2*pi at paper scale; smaller budgets train dramatically
    # better with lower frequency content (see the Fourier ablation bench
    # and EXPERIMENTS.md).
    "paper": dict(
        map_shape=(21, 21), branch=[256] * 9, trunk=[128] * 5, q=128,
        fourier_freqs=64, fourier_std=2.0 * np.pi, train_grid=(21, 21, 11),
        iterations=10_000, n_functions=50, decay_every=500, seed=0,
    ),
    "ci": dict(
        map_shape=(21, 21), branch=[96] * 4, trunk=[64] * 3, q=64,
        fourier_freqs=24, fourier_std=2.0, train_grid=(11, 11, 7),
        iterations=2500, n_functions=10, decay_every=300, seed=0,
    ),
    "test": dict(
        map_shape=(7, 7), branch=[24] * 2, trunk=[24] * 2, q=16,
        fourier_freqs=8, fourier_std=1.0, train_grid=(5, 5, 4),
        iterations=700, n_functions=6, decay_every=150, seed=0,
    ),
}

_SCALES_B: Dict[str, Dict] = {
    # fourier_std: pi at paper scale; lower for small budgets (see the
    # Fourier ablation bench).  focus_band importance-samples the thin
    # volumetric power layer; loss_weights up-weight the convection
    # residuals so the HTC sensitivity signal survives reduced budgets.
    "paper": dict(
        branch=[20] * 5, trunk=[128] * 5, q=50, fourier_freqs=64,
        fourier_std=np.pi, n_interior=7000 // 8, n_per_face=7000 // 48,
        iterations=5000, n_functions=20, decay_every=500, focus_band=None,
        loss_weights=None,
    ),
    "ci": dict(
        branch=[20] * 3, trunk=[48] * 3, q=32, fourier_freqs=16,
        fourier_std=3.0, n_interior=300, n_per_face=40,
        iterations=1500, n_functions=12, decay_every=300,
        focus_band=(0.40, 0.60, 0.3),
        loss_weights={"bc:TOP": 30.0, "bc:BOTTOM": 30.0},
    ),
    "test": dict(
        branch=[12] * 2, trunk=[20] * 2, q=12, fourier_freqs=6,
        fourier_std=1.5, n_interior=60, n_per_face=12,
        iterations=900, n_functions=6, decay_every=200,
        focus_band=(0.40, 0.60, 0.3),
        loss_weights={"bc:TOP": 30.0, "bc:BOTTOM": 30.0},
    ),
}

_SCALES_V: Dict[str, Dict] = {
    "ci": dict(
        map_shape=(7, 7, 5), branch=[96] * 3, trunk=[64] * 3, q=48,
        fourier_freqs=16, fourier_std=2.0, train_grid=(9, 9, 7),
        iterations=1500, n_functions=10, decay_every=300,
    ),
    "test": dict(
        map_shape=(4, 4, 3), branch=[24] * 2, trunk=[20] * 2, q=16,
        fourier_freqs=6, fourier_std=1.0, train_grid=(5, 5, 4),
        iterations=250, n_functions=5, decay_every=150,
    ),
}

_SCALES_T: Dict[str, Dict] = {
    # horizon: a 4 s window shows the full step response of the chip's
    # ~1.6-4 s thermal time constants.  ic_weight up-weights the only
    # *labelled* signal in the transient loss (the farm-solved t=0
    # anchor) so the rollout's starting point stays pinned.
    "ci": dict(
        map_shape=(11, 11), n_time_sensors=12, branch=[96] * 3,
        trunk=[64] * 3, q=48, fourier_freqs=20, fourier_std=2.0,
        n_interior=384, n_per_face=48, n_initial=96, ic_grid=(9, 9, 6),
        iterations=2200, n_functions=8, decay_every=300,
        horizon=4.0, rho_cp=1.6e6, ic_weight=4.0,
    ),
    "test": dict(
        map_shape=(5, 5), n_time_sensors=6, branch=[24] * 2,
        trunk=[24] * 2, q=16, fourier_freqs=8, fourier_std=1.0,
        n_interior=96, n_per_face=16, n_initial=32, ic_grid=(5, 5, 4),
        iterations=400, n_functions=4, decay_every=150,
        horizon=4.0, rho_cp=1.6e6, ic_weight=4.0,
    ),
}


def _params(table: Dict[str, Dict], scale: str) -> Dict:
    if scale not in table:
        raise ValueError(f"unknown scale {scale!r}; choices: {sorted(table)}")
    return table[scale]


def scenario_experiment_a(
    scale: str = "ci",
    htc_bottom: float = 500.0,
    conductivity: float = 0.1,
    dt_ref: float = 10.0,
    seed: int = 0,
) -> ThermalScenario:
    """Sec. V-A: single-input DeepOHeat over 2-D top-surface power maps."""
    params = _params(_SCALES_A, scale)
    return ThermalScenario(
        name="experiment_a",
        scale=scale,
        description=(
            "2D power map on TOP; adiabatic sides; convection bottom "
            f"(h={htc_bottom} W/m^2K); k={conductivity} W/mK; scale={scale}"
        ),
        t_ambient=T_AMB,
        dt_ref=dt_ref,
        seed=seed,
        geometry=GeometrySpec(size_mm=(1.0, 1.0, 0.5)),
        material=MaterialSpec(conductivity=conductivity),
        boundaries={
            "bottom": BoundarySpec(kind="convection", htc=htc_bottom),
            **{face: BoundarySpec(kind="adiabatic") for face in _SIDES},
        },
        inputs=[
            InputSpec(
                family="power_map", name="power_map", face="top",
                map_shape=params["map_shape"], unit_flux=2500.0,
                grf=GRFSpec(length_scale=0.3),
            )
        ],
        network=NetworkSpec(
            branch_hidden=(tuple(params["branch"]),),
            trunk_hidden=tuple(params["trunk"]),
            q=params["q"],
            fourier_frequencies=params["fourier_freqs"],
            fourier_std=float(params["fourier_std"]),
        ),
        collocation=CollocationSpec(kind="mesh", grid=params["train_grid"]),
        training=TrainingSpec(
            iterations=params["iterations"],
            n_functions=params["n_functions"],
            decay_every=params["decay_every"],
            seed=params["seed"],
        ),
        eval_grid=(21, 21, 11),
    )


def scenario_experiment_b(
    scale: str = "ci",
    htc_range: Tuple[float, float] = (333.33, 1000.0),
    conductivity: float = 0.1,
    dt_ref: float = 2.0,
    seed: int = 0,
    aligned: bool = True,
) -> ThermalScenario:
    """Sec. V-B: dual-input DeepOHeat over top/bottom HTCs."""
    params = _params(_SCALES_B, scale)
    low, high = float(htc_range[0]), float(htc_range[1])
    return ThermalScenario(
        name="experiment_b",
        scale=scale,
        description=(
            "dual HTC inputs on TOP/BOTTOM over "
            f"[{low:.2f}, {high:.2f}]^2; 0.625 mW volumetric "
            f"layer; aligned={aligned}; scale={scale}"
        ),
        t_ambient=T_AMB,
        dt_ref=dt_ref,
        seed=seed,
        geometry=GeometrySpec(size_mm=(1.0, 1.0, 0.55)),
        material=MaterialSpec(conductivity=conductivity),
        boundaries={
            "top": BoundarySpec(kind="convection", htc=500.0),
            "bottom": BoundarySpec(kind="convection", htc=500.0),
        },
        volumetric_source=VolumetricSourceSpec(
            total_power=0.000625, thickness_mm=0.05
        ),
        inputs=[
            InputSpec(family="htc", face="top", low=low, high=high),
            InputSpec(family="htc", face="bottom", low=low, high=high),
        ],
        network=NetworkSpec(
            branch_hidden=(tuple(params["branch"]), tuple(params["branch"])),
            trunk_hidden=tuple(params["trunk"]),
            q=params["q"],
            fourier_frequencies=params["fourier_freqs"],
            fourier_std=float(params["fourier_std"]),
        ),
        collocation=CollocationSpec(
            kind="random",
            n_interior=params["n_interior"],
            n_per_face=params["n_per_face"],
            aligned=aligned,
            focus_band=params["focus_band"],
        ),
        training=TrainingSpec(
            iterations=params["iterations"],
            n_functions=params["n_functions"],
            decay_every=params["decay_every"],
            seed=seed,
        ),
        loss_weights=(dict(params["loss_weights"])
                      if params["loss_weights"] else None),
        eval_grid=(21, 21, 12),
    )


def scenario_experiment_volumetric(
    scale: str = "ci",
    conductivity: float = 0.1,
    unit_density: float = 5.0e6,
    dt_ref: float = 10.0,
    seed: int = 0,
) -> ThermalScenario:
    """Future-work extension: a 3-D volumetric power map as operator input."""
    params = _params(_SCALES_V, scale)
    return ThermalScenario(
        name="experiment_volumetric",
        scale=scale,
        description=(
            f"3D volumetric power map input {params['map_shape']} "
            f"(paper future work); convection top+bottom; scale={scale}"
        ),
        t_ambient=T_AMB,
        dt_ref=dt_ref,
        seed=seed,
        geometry=GeometrySpec(size_mm=(1.0, 1.0, 0.5)),
        material=MaterialSpec(conductivity=conductivity),
        boundaries={
            "top": BoundarySpec(kind="convection", htc=500.0),
            "bottom": BoundarySpec(kind="convection", htc=500.0),
        },
        inputs=[
            InputSpec(
                family="volumetric_power_map", name="power_map_3d",
                map_shape=params["map_shape"], unit_density=unit_density,
                grf=GRFSpec(length_scale=0.35, transform="softplus"),
            )
        ],
        network=NetworkSpec(
            branch_hidden=(tuple(params["branch"]),),
            trunk_hidden=tuple(params["trunk"]),
            q=params["q"],
            fourier_frequencies=params["fourier_freqs"],
            fourier_std=float(params["fourier_std"]),
        ),
        collocation=CollocationSpec(kind="mesh", grid=params["train_grid"]),
        training=TrainingSpec(
            iterations=params["iterations"],
            n_functions=params["n_functions"],
            decay_every=params["decay_every"],
            seed=seed,
        ),
        eval_grid=(13, 13, 9),
    )


def scenario_experiment_transient(
    scale: str = "ci",
    htc_bottom: float = 500.0,
    conductivity: float = 0.1,
    dt_ref: float = 10.0,
    seed: int = 0,
) -> ThermalScenario:
    """Transient extension: time-modulated power pulses on the chip top."""
    params = _params(_SCALES_T, scale)
    return ThermalScenario(
        name="experiment_transient",
        scale=scale,
        description=(
            f"time-modulated top power map {params['map_shape']} x "
            f"{params['n_time_sensors']} trace sensors over a "
            f"{params['horizon']:g} s window; convection bottom "
            f"(h={htc_bottom} W/m^2K); scale={scale}"
        ),
        t_ambient=T_AMB,
        dt_ref=dt_ref,
        seed=seed,
        geometry=GeometrySpec(size_mm=(1.0, 1.0, 0.5)),
        material=MaterialSpec(conductivity=conductivity),
        boundaries={
            "bottom": BoundarySpec(kind="convection", htc=htc_bottom),
            **{face: BoundarySpec(kind="adiabatic") for face in _SIDES},
        },
        inputs=[
            InputSpec(
                family="transient_power_map", name="transient_power",
                face="top", map_shape=params["map_shape"],
                n_time_sensors=params["n_time_sensors"], unit_flux=2500.0,
                grf=GRFSpec(length_scale=0.3), traces=TraceFamilySpec(),
            )
        ],
        network=NetworkSpec(
            branch_hidden=(tuple(params["branch"]),),
            trunk_hidden=tuple(params["trunk"]),
            q=params["q"],
            fourier_frequencies=params["fourier_freqs"],
            fourier_std=float(params["fourier_std"]),
        ),
        collocation=CollocationSpec(
            kind="transient",
            n_interior=params["n_interior"],
            n_per_face=params["n_per_face"],
            n_initial=params["n_initial"],
        ),
        training=TrainingSpec(
            iterations=params["iterations"],
            n_functions=params["n_functions"],
            decay_every=params["decay_every"],
            seed=seed,
        ),
        transient=TransientSectionSpec(
            rho_cp=params["rho_cp"],
            horizon=params["horizon"],
            ic_grid=params["ic_grid"],
        ),
        loss_weights={"ic": params["ic_weight"]},
        eval_grid=(13, 13, 9),
    )


_BUILDERS = {
    "a": scenario_experiment_a,
    "b": scenario_experiment_b,
    "volumetric": scenario_experiment_volumetric,
    "c": scenario_experiment_transient,
    "transient": scenario_experiment_transient,
}


def scenario_for(name: str, scale: str = "ci", **kwargs) -> ThermalScenario:
    """The preset scenario for a workload family.

    ``name`` is ``"a"``, ``"b"``, ``"volumetric"`` or ``"transient"``
    (alias ``"c"``); extra keyword arguments forward to the family's
    ``scenario_experiment_*`` builder.
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown experiment {name!r}; use 'a', 'b', 'volumetric' "
            f"or 'transient'"
        )
    return builder(scale=scale, **kwargs)


def preset_inventory() -> Dict[str, Dict]:
    """Machine-readable preset catalogue (for ``repro info --json``)."""
    return {
        "a": {"scales": sorted(_SCALES_A),
              "summary": "2D power maps, 1x1x0.5 mm chip (Sec. V-A)"},
        "b": {"scales": sorted(_SCALES_B),
              "summary": "dual HTC inputs, volumetric layer (Sec. V-B)"},
        "volumetric": {"scales": sorted(_SCALES_V),
                       "summary": "3D power maps (Sec. VI future work)"},
        "transient": {"scales": sorted(_SCALES_T),
                      "summary": "time-modulated power pulses (eq. 1)"},
    }


def scenario_names() -> Tuple[str, ...]:
    """Names accepted by :func:`scenario_for`."""
    return ("a", "b", "volumetric", "transient")
