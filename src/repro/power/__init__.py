"""Power-map generation, conversion and interpolation."""

from .grf import GaussianRandomField2D, GaussianRandomField3D
from .interpolate import (
    grid_bilinear_function,
    tile_centers,
    tiles_piecewise_function,
    tiles_to_grid,
)
from .traces import (
    ConstantTrace,
    PeriodicTrace,
    PowerTrace,
    RampTrace,
    StepTrace,
    TraceFamily,
    interpolate_trace,
    trace_times,
)
from .tiles import (
    Block,
    TilePowerMap,
    blocks_to_tiles,
    map_complexity,
    paper_test_suite,
    random_block_map,
)
from .volumetric import (
    GridVolumetricPower,
    UniformLayerPower,
    VolumetricPower,
    ZeroPower,
)

__all__ = [
    "Block",
    "ConstantTrace",
    "GaussianRandomField2D",
    "GaussianRandomField3D",
    "GridVolumetricPower",
    "PeriodicTrace",
    "PowerTrace",
    "RampTrace",
    "StepTrace",
    "TilePowerMap",
    "TraceFamily",
    "UniformLayerPower",
    "VolumetricPower",
    "ZeroPower",
    "blocks_to_tiles",
    "grid_bilinear_function",
    "interpolate_trace",
    "map_complexity",
    "paper_test_suite",
    "random_block_map",
    "tile_centers",
    "tiles_piecewise_function",
    "tiles_to_grid",
    "trace_times",
]
