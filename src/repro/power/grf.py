"""Gaussian-random-field power-map generators.

The paper trains on 2-D power maps "sampled from a two-dimensional standard
Gaussian random field (GRF) with the length scale parameter equal to 0.3"
(Sec. V-A.2).  We use the standard RBF covariance

    C(r) = variance * exp(-r^2 / (2 * length_scale^2))

on the unit square, factorised once per grid with a jittered Cholesky.  A
3-D variant supports the paper's future-work direction (volumetric power
optimisation).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

_TRANSFORMS = ("none", "shift_nonneg", "abs", "softplus")


def _rbf_covariance(points: np.ndarray, length_scale: float, variance: float) -> np.ndarray:
    deltas = points[:, None, :] - points[None, :, :]
    sq_dist = np.sum(deltas**2, axis=-1)
    return variance * np.exp(-0.5 * sq_dist / length_scale**2)


def _apply_transform(samples: np.ndarray, transform: str) -> np.ndarray:
    if transform == "none":
        return samples
    if transform == "shift_nonneg":
        flat_min = samples.min(axis=tuple(range(1, samples.ndim)), keepdims=True)
        return samples - flat_min
    if transform == "abs":
        return np.abs(samples)
    if transform == "softplus":
        return np.logaddexp(0.0, samples)
    raise ValueError(f"unknown transform {transform!r}; choices: {_TRANSFORMS}")


class GaussianRandomField2D:
    """Samples smooth random functions on an (n1, n2) unit-square grid.

    Parameters
    ----------
    shape:
        Grid node counts, e.g. ``(21, 21)`` for the paper's top surface.
    length_scale:
        RBF length scale in unit-square coordinates; the paper uses 0.3
        ("controls the smoothness of the sampled functions").
    variance, mean:
        Marginal variance / mean of the field (standard GRF: 1.0 / 0.0).
    transform:
        Optional post-transform making maps non-negative:
        ``"none" | "shift_nonneg" | "abs" | "softplus"``.
    """

    def __init__(
        self,
        shape: Tuple[int, int] = (21, 21),
        length_scale: float = 0.3,
        variance: float = 1.0,
        mean: float = 0.0,
        transform: str = "none",
        jitter: float = 1e-10,
    ):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        if transform not in _TRANSFORMS:
            raise ValueError(f"unknown transform {transform!r}; choices: {_TRANSFORMS}")
        self.shape = tuple(shape)
        self.length_scale = float(length_scale)
        self.variance = float(variance)
        self.mean = float(mean)
        self.transform = transform
        self._factor: Optional[np.ndarray] = None
        self._jitter = float(jitter)

    # ------------------------------------------------------------------
    @property
    def grid_points(self) -> np.ndarray:
        """Unit-square node coordinates, shape (n1*n2, 2)."""
        u = np.linspace(0.0, 1.0, self.shape[0])
        v = np.linspace(0.0, 1.0, self.shape[1])
        gu, gv = np.meshgrid(u, v, indexing="ij")
        return np.column_stack([gu.ravel(), gv.ravel()])

    def _cholesky(self) -> np.ndarray:
        if self._factor is None:
            cov = _rbf_covariance(self.grid_points, self.length_scale, self.variance)
            jitter = self._jitter
            while True:
                try:
                    self._factor = np.linalg.cholesky(
                        cov + jitter * np.eye(cov.shape[0])
                    )
                    break
                except np.linalg.LinAlgError:
                    jitter *= 10.0
                    if jitter > 1e-2:
                        raise
        return self._factor

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, n_samples: int = 1) -> np.ndarray:
        """Draw fields, shape ``(n_samples, n1, n2)``."""
        factor = self._cholesky()
        white = rng.standard_normal(size=(factor.shape[0], n_samples))
        fields = (factor @ white).T.reshape((n_samples,) + self.shape)
        return _apply_transform(self.mean + fields, self.transform)

    def sample_one(self, rng: np.random.Generator) -> np.ndarray:
        return self.sample(rng, 1)[0]


class GaussianRandomField3D:
    """3-D GRF on an (n1, n2, n3) unit-cube grid (future-work: 3-D power).

    Uses a separable RBF kernel (Kronecker structure) so the factorisation
    stays cheap: Cov = C1 (x) C2 (x) C3, with per-axis Cholesky factors.
    """

    def __init__(
        self,
        shape: Tuple[int, int, int],
        length_scale: float = 0.3,
        variance: float = 1.0,
        transform: str = "none",
        jitter: float = 1e-10,
    ):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        if transform not in _TRANSFORMS:
            raise ValueError(f"unknown transform {transform!r}; choices: {_TRANSFORMS}")
        self.shape = tuple(shape)
        self.length_scale = float(length_scale)
        self.variance = float(variance)
        self.transform = transform
        self._factors = None
        self._jitter = float(jitter)

    def _axis_factor(self, n: int) -> np.ndarray:
        coords = np.linspace(0.0, 1.0, n)[:, None]
        cov = _rbf_covariance(coords, self.length_scale, 1.0)
        return np.linalg.cholesky(cov + self._jitter * np.eye(n))

    def sample(self, rng: np.random.Generator, n_samples: int = 1) -> np.ndarray:
        if self._factors is None:
            self._factors = [self._axis_factor(n) for n in self.shape]
        l1, l2, l3 = self._factors
        scale = np.sqrt(self.variance)
        out = np.empty((n_samples,) + self.shape)
        for s in range(n_samples):
            white = rng.standard_normal(size=self.shape)
            # Apply the Kronecker factor along each axis in turn.
            field = np.einsum("ia,ajk->ijk", l1, white)
            field = np.einsum("jb,ibk->ijk", l2, field)
            field = np.einsum("kc,ijc->ijk", l3, field)
            out[s] = scale * field
        return _apply_transform(out, self.transform)
