"""Tile-to-grid power-map interpolation (paper Fig. 4).

Celsius 3D consumes *tile-based* power maps: piecewise-constant values on a
20 x 20 partition of the top surface.  DeepOHeat consumes *grid-based* maps:
values at the 21 x 21 mesh nodes.  The paper bridges them by interpolating
tile values onto grid nodes, which "not only enables DeepOHeat to accept
almost the same realistic power maps as in Celsius 3D but also smooths out
these discretely defined power maps" (Sec. V-A.5).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np
from scipy.interpolate import RegularGridInterpolator


def tile_centers(n_tiles: int) -> np.ndarray:
    """Unit-interval coordinates of tile centres: (i + 0.5) / n."""
    return (np.arange(n_tiles) + 0.5) / n_tiles


def tiles_to_grid(tiles: np.ndarray, grid_shape: Tuple[int, int]) -> np.ndarray:
    """Bilinearly interpolate an (nt1, nt2) tile map onto grid nodes.

    Grid nodes outside the tile-centre hull (the outermost half-tile ring)
    are clamped to the nearest edge value, preserving the map's range —
    important because the paper compares *peak* errors.
    """
    tiles = np.asarray(tiles, dtype=np.float64)
    if tiles.ndim != 2:
        raise ValueError(f"tile map must be 2-D, got shape {tiles.shape}")
    nt1, nt2 = tiles.shape
    interpolator = RegularGridInterpolator(
        (tile_centers(nt1), tile_centers(nt2)), tiles, method="linear"
    )
    g1 = np.linspace(0.0, 1.0, grid_shape[0])
    g2 = np.linspace(0.0, 1.0, grid_shape[1])
    gu, gv = np.meshgrid(g1, g2, indexing="ij")
    query = np.column_stack([gu.ravel(), gv.ravel()])
    # Clamp into the tile-centre hull -> nearest-edge extension.
    query[:, 0] = np.clip(query[:, 0], tile_centers(nt1)[0], tile_centers(nt1)[-1])
    query[:, 1] = np.clip(query[:, 1], tile_centers(nt2)[0], tile_centers(nt2)[-1])
    return interpolator(query).reshape(grid_shape)


def grid_bilinear_function(
    grid_values: np.ndarray,
    extent: Tuple[float, float],
    origin: Tuple[float, float] = (0.0, 0.0),
) -> Callable[[np.ndarray], np.ndarray]:
    """Wrap a nodal (n1, n2) map as a bilinear function of SI (x, y).

    The returned callable accepts (n, 2) points in metres and clamps
    queries to the map extent, matching the FDM assembler's expectations
    for a :class:`repro.bc.NeumannBC` influx.
    """
    grid_values = np.asarray(grid_values, dtype=np.float64)
    n1, n2 = grid_values.shape
    x_axis = origin[0] + np.linspace(0.0, extent[0], n1)
    y_axis = origin[1] + np.linspace(0.0, extent[1], n2)
    interpolator = RegularGridInterpolator((x_axis, y_axis), grid_values, method="linear")

    def evaluate(points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))[:, :2].copy()
        points[:, 0] = np.clip(points[:, 0], x_axis[0], x_axis[-1])
        points[:, 1] = np.clip(points[:, 1], y_axis[0], y_axis[-1])
        return interpolator(points)

    return evaluate


def tiles_piecewise_function(
    tiles: np.ndarray,
    extent: Tuple[float, float],
    origin: Tuple[float, float] = (0.0, 0.0),
) -> Callable[[np.ndarray], np.ndarray]:
    """Wrap a tile map as the piecewise-constant function Celsius uses."""
    tiles = np.asarray(tiles, dtype=np.float64)
    nt1, nt2 = tiles.shape

    def evaluate(points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        u = (points[:, 0] - origin[0]) / extent[0]
        v = (points[:, 1] - origin[1]) / extent[1]
        i = np.clip((u * nt1).astype(int), 0, nt1 - 1)
        j = np.clip((v * nt2).astype(int), 0, nt2 - 1)
        return tiles[i, j]

    return evaluate
