"""Tile-based power maps and the paper's p1...p10 test suite.

Industrial power maps (as consumed by Celsius 3D) are piecewise-constant on
a coarse tile partition of the top surface; the paper's unseen test maps
are "composed of heat blocks" of increasing spatial complexity, ending in
p10 which has "multiple small-sized heat sources and one of them is also
given a relatively large power" (Sec. V-A.6).  Those maps are proprietary,
so :func:`paper_test_suite` builds a deterministic synthetic family with
the same qualitative progression — block count grows, block size shrinks,
and the final map carries one hot small block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Block:
    """A rectangular heat block on the tile lattice.

    ``row``/``col`` index the upper-left tile; ``height``/``width`` count
    tiles; ``value`` is the per-tile power in power-map units.
    """

    row: int
    col: int
    height: int
    width: int
    value: float

    def __post_init__(self):
        if self.height <= 0 or self.width <= 0:
            raise ValueError("block dimensions must be positive")
        if self.row < 0 or self.col < 0:
            raise ValueError("block position must be non-negative")


def blocks_to_tiles(
    blocks: Sequence[Block], shape: Tuple[int, int] = (20, 20)
) -> np.ndarray:
    """Paint blocks onto a zero tile map (overlaps accumulate)."""
    tiles = np.zeros(shape)
    for block in blocks:
        if block.row + block.height > shape[0] or block.col + block.width > shape[1]:
            raise ValueError(f"{block} exceeds tile map of shape {shape}")
        tiles[
            block.row : block.row + block.height,
            block.col : block.col + block.width,
        ] += block.value
    return tiles


@dataclass(frozen=True)
class TilePowerMap:
    """A named tile map plus a scalar complexity score for ordering."""

    name: str
    tiles: np.ndarray
    complexity: float

    @property
    def shape(self) -> Tuple[int, int]:
        return self.tiles.shape

    @property
    def total_units(self) -> float:
        return float(np.sum(self.tiles))


def map_complexity(tiles: np.ndarray) -> float:
    """Total-variation complexity proxy: sum of absolute tile-to-tile jumps.

    Monotonically increasing over the p1..p10 suite by construction; used
    in tests to assert the "increasing complexity" property the paper's
    Fig. 3 panels are ordered by.
    """
    tiles = np.asarray(tiles, dtype=np.float64)
    dv = np.abs(np.diff(tiles, axis=0)).sum()
    dh = np.abs(np.diff(tiles, axis=1)).sum()
    return float(dv + dh)


def _suite_blocks() -> List[List[Block]]:
    """Hand-laid block lists p1..p10 with strictly growing complexity."""
    return [
        # p1: one large central block.
        [Block(6, 6, 8, 8, 1.0)],
        # p2: two medium blocks, diagonal.
        [Block(2, 2, 6, 6, 1.0), Block(12, 12, 6, 6, 1.0)],
        # p3: three blocks forming an L.
        [Block(2, 2, 5, 5, 1.0), Block(2, 13, 5, 5, 1.0), Block(13, 2, 5, 5, 1.0)],
        # p4: four corner blocks.
        [
            Block(1, 1, 5, 5, 1.0),
            Block(1, 14, 5, 5, 1.0),
            Block(14, 1, 5, 5, 1.0),
            Block(14, 14, 5, 5, 1.0),
        ],
        # p5: four corners + hot centre.
        [
            Block(1, 1, 4, 4, 1.0),
            Block(1, 15, 4, 4, 1.0),
            Block(15, 1, 4, 4, 1.0),
            Block(15, 15, 4, 4, 1.0),
            Block(8, 8, 4, 4, 1.5),
        ],
        # p6: six blocks, two intensity levels.
        [
            Block(1, 1, 4, 4, 1.0),
            Block(1, 8, 4, 4, 1.5),
            Block(1, 15, 4, 4, 1.0),
            Block(15, 1, 4, 4, 1.5),
            Block(15, 8, 4, 4, 1.0),
            Block(15, 15, 4, 4, 1.5),
        ],
        # p7: seven blocks in a ring.
        [
            Block(1, 1, 3, 3, 1.5),
            Block(1, 8, 3, 3, 1.5),
            Block(1, 16, 3, 3, 1.5),
            Block(8, 1, 3, 3, 1.5),
            Block(8, 16, 3, 3, 1.5),
            Block(16, 1, 3, 3, 1.5),
            Block(16, 16, 3, 3, 1.5),
        ],
        # p8: 3x3 lattice minus centre, alternating power.
        [
            Block(1, 1, 3, 3, 1.0),
            Block(1, 9, 3, 3, 2.0),
            Block(1, 16, 3, 3, 1.0),
            Block(9, 1, 3, 3, 2.0),
            Block(9, 16, 3, 3, 2.0),
            Block(16, 1, 3, 3, 1.0),
            Block(16, 9, 3, 3, 2.0),
            Block(16, 16, 3, 3, 1.0),
        ],
        # p9: full 3x3 lattice of small blocks.
        [
            Block(r, c, 2, 2, 1.75 + 0.5 * ((r + c) % 3))
            for r in (2, 9, 16)
            for c in (2, 9, 16)
        ],
        # p10: many small sources, one given a relatively large power.
        [
            Block(1, 1, 2, 2, 1.0),
            Block(1, 6, 2, 2, 1.5),
            Block(1, 11, 2, 2, 1.0),
            Block(1, 16, 2, 2, 1.5),
            Block(6, 3, 2, 2, 1.5),
            Block(6, 9, 2, 2, 1.0),
            Block(6, 15, 2, 2, 1.5),
            Block(11, 1, 2, 2, 1.0),
            Block(11, 6, 2, 2, 6.0),  # the hot small source
            Block(11, 11, 2, 2, 1.0),
            Block(11, 16, 2, 2, 1.5),
            Block(16, 3, 2, 2, 1.0),
            Block(16, 9, 2, 2, 1.5),
            Block(16, 15, 2, 2, 1.0),
        ],
    ]


def paper_test_suite(shape: Tuple[int, int] = (20, 20)) -> List[TilePowerMap]:
    """The deterministic p1..p10 stand-ins for the paper's test maps."""
    suite = []
    for index, blocks in enumerate(_suite_blocks(), start=1):
        tiles = blocks_to_tiles(blocks, shape)
        suite.append(
            TilePowerMap(name=f"p{index}", tiles=tiles, complexity=map_complexity(tiles))
        )
    return suite


def random_block_map(
    rng: np.random.Generator,
    shape: Tuple[int, int] = (20, 20),
    n_blocks: int = 4,
    value_range: Tuple[float, float] = (0.5, 2.0),
    size_range: Tuple[int, int] = (2, 6),
) -> np.ndarray:
    """Random block-composed map (used for out-of-suite generalisation tests)."""
    blocks = []
    for _ in range(n_blocks):
        height = int(rng.integers(size_range[0], size_range[1] + 1))
        width = int(rng.integers(size_range[0], size_range[1] + 1))
        row = int(rng.integers(0, shape[0] - height + 1))
        col = int(rng.integers(0, shape[1] - width + 1))
        value = float(rng.uniform(*value_range))
        blocks.append(Block(row, col, height, width, value))
    return blocks_to_tiles(blocks, shape)
