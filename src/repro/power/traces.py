"""Time-dependent power modulation traces for transient workloads.

Real 3D-IC power is not static: workloads step (a core waking up), ramp
(DVFS transitions) or oscillate (clock gating).  A :class:`PowerTrace`
is a dimensionless modulation factor ``g(t_hat)`` over hat time
``t_hat in [0, 1]`` (``t_hat = t / horizon``); the transient operator
input multiplies a spatial power map by it, so one (map, trace) pair
defines a full space-time boundary source ``q(x, t) = q(x) * g(t)``.

The branch net identifies a trace by its values on ``n`` equispaced hat
times (the same sensor-value encoding the paper uses for 2-D power
maps); :func:`interpolate_trace` is the matching continuous
reconstruction (piecewise linear), used both by the physics residual and
by the theta-scheme reference solver so the surrogate and the FDM
labels see *exactly* the same source function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


def trace_times(n_samples: int) -> np.ndarray:
    """The equispaced hat-time sensor locations of an ``n``-sample trace."""
    if n_samples < 2:
        raise ValueError("a trace needs at least 2 samples")
    return np.linspace(0.0, 1.0, int(n_samples))


def interpolate_trace(samples: np.ndarray, t_hat: np.ndarray) -> np.ndarray:
    """Piecewise-linear trace values at arbitrary hat times.

    ``samples`` is ``(n_samples,)`` for one trace or ``(n_traces,
    n_samples)`` for a batch; the result mirrors the leading axis with a
    trailing axis of ``len(t_hat)``.  Queries are clamped to ``[0, 1]``
    (``np.interp`` endpoint semantics), matching the rollout horizon.
    """
    samples = np.asarray(samples, dtype=np.float64)
    t_hat = np.atleast_1d(np.asarray(t_hat, dtype=np.float64))
    single = samples.ndim == 1
    rows = samples[None, :] if single else samples
    grid = trace_times(rows.shape[1])
    out = np.empty((rows.shape[0], t_hat.shape[0]))
    for index, row in enumerate(rows):
        out[index] = np.interp(t_hat, grid, row)
    return out[0] if single else out


class PowerTrace:
    """A modulation factor ``g(t_hat)`` over the unit time interval."""

    def __call__(self, t_hat: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def samples(self, n_samples: int) -> np.ndarray:
        """Sensor encoding: the trace at ``n`` equispaced hat times."""
        return np.asarray(self(trace_times(n_samples)), dtype=np.float64)


@dataclass(frozen=True)
class StepTrace(PowerTrace):
    """A workload step: ``base`` before ``t_step``, ``high`` after.

    The switch is linear over ``width`` hat time (a zero-width step
    cannot be represented by finitely many sensor samples anyway, and a
    finite slew matches real power-delivery behaviour).
    """

    base: float = 0.4
    high: float = 1.2
    t_step: float = 0.25
    width: float = 0.05

    def __call__(self, t_hat: np.ndarray) -> np.ndarray:
        t_hat = np.asarray(t_hat, dtype=np.float64)
        ramp = np.clip((t_hat - self.t_step) / max(self.width, 1e-9), 0.0, 1.0)
        return self.base + (self.high - self.base) * ramp


@dataclass(frozen=True)
class RampTrace(PowerTrace):
    """A linear ramp from ``base`` to ``high`` over ``[t_start, t_end]``."""

    base: float = 0.3
    high: float = 1.0
    t_start: float = 0.0
    t_end: float = 1.0

    def __call__(self, t_hat: np.ndarray) -> np.ndarray:
        t_hat = np.asarray(t_hat, dtype=np.float64)
        span = max(self.t_end - self.t_start, 1e-9)
        ramp = np.clip((t_hat - self.t_start) / span, 0.0, 1.0)
        return self.base + (self.high - self.base) * ramp


@dataclass(frozen=True)
class PeriodicTrace(PowerTrace):
    """Clock-gating style oscillation between ``low`` and ``high``.

    A smoothed square wave: periodic with ``period`` (hat time) and high
    for a ``duty`` fraction of each cycle.  The wave is the cosine
    distance-to-window thresholded at ``cos(pi * duty)`` — exactly the
    level the cosine exceeds for a ``duty`` fraction of the period — and
    squashed through ``tanh(sharpness * ...)``, so larger ``sharpness``
    squares the edges up while keeping the trace smooth enough for a
    coordinate network to represent.
    """

    low: float = 0.3
    high: float = 1.1
    period: float = 0.5
    duty: float = 0.5
    sharpness: float = 2.0

    def __call__(self, t_hat: np.ndarray) -> np.ndarray:
        t_hat = np.asarray(t_hat, dtype=np.float64)
        phase = (t_hat / max(self.period, 1e-9)) % 1.0
        wave = np.cos(2.0 * np.pi * (phase - 0.5 * self.duty))
        threshold = np.cos(np.pi * np.clip(self.duty, 1e-3, 1.0 - 1e-3))
        shaped = np.tanh(self.sharpness * (wave - threshold))
        return self.low + (self.high - self.low) * 0.5 * (1.0 + shaped)


@dataclass(frozen=True)
class ConstantTrace(PowerTrace):
    """A time-invariant trace: transient training's steady anchor."""

    level: float = 1.0

    def __call__(self, t_hat: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(t_hat, dtype=np.float64), self.level)


class TraceFamily:
    """A random family over the trace kinds, for branch-space sampling.

    Draws trace *parameters* uniformly from CI-sensible ranges; the
    mixture ``weights`` follow ``kinds`` order.  ``sample_samples``
    returns the sensor encodings directly, which is what the transient
    operator input stores as its raw time half.
    """

    KINDS = ("step", "ramp", "periodic", "constant")

    def __init__(
        self,
        kinds: Sequence[str] = ("step", "ramp", "periodic"),
        weights: Optional[Sequence[float]] = None,
        level_range: tuple = (0.2, 1.4),
    ):
        unknown = set(kinds) - set(self.KINDS)
        if unknown:
            raise ValueError(f"unknown trace kinds: {sorted(unknown)}")
        if not kinds:
            raise ValueError("need at least one trace kind")
        self.kinds = tuple(kinds)
        if weights is None:
            probabilities = np.full(len(self.kinds), 1.0 / len(self.kinds))
        else:
            probabilities = np.asarray(weights, dtype=np.float64)
            if probabilities.shape != (len(self.kinds),) or probabilities.sum() <= 0:
                raise ValueError("weights must match kinds and sum > 0")
            probabilities = probabilities / probabilities.sum()
        self.probabilities = probabilities
        self.level_range = (float(level_range[0]), float(level_range[1]))

    def _levels(self, rng: np.random.Generator) -> tuple:
        low, high = self.level_range
        a, b = np.sort(rng.uniform(low, high, size=2))
        return float(a), float(b)

    def sample_trace(self, rng: np.random.Generator) -> PowerTrace:
        """Draw one random trace."""
        kind = self.kinds[rng.choice(len(self.kinds), p=self.probabilities)]
        base, high = self._levels(rng)
        if kind == "step":
            return StepTrace(
                base=base,
                high=high,
                t_step=float(rng.uniform(0.1, 0.6)),
                width=float(rng.uniform(0.03, 0.12)),
            )
        if kind == "ramp":
            start = float(rng.uniform(0.0, 0.4))
            return RampTrace(
                base=base,
                high=high,
                t_start=start,
                t_end=float(rng.uniform(start + 0.2, 1.0)),
            )
        if kind == "periodic":
            return PeriodicTrace(
                low=base,
                high=high,
                period=float(rng.uniform(0.25, 0.6)),
                duty=float(rng.uniform(0.35, 0.65)),
                sharpness=float(rng.uniform(1.5, 3.0)),
            )
        return ConstantTrace(level=high)

    def sample(self, rng: np.random.Generator, n: int) -> list:
        """Draw ``n`` random traces."""
        return [self.sample_trace(rng) for _ in range(n)]

    def sample_samples(
        self, rng: np.random.Generator, n: int, n_samples: int
    ) -> np.ndarray:
        """Sensor encodings of ``n`` random traces, shape ``(n, n_samples)``."""
        return np.stack(
            [trace.samples(n_samples) for trace in self.sample(rng, n)],
        )
