"""Volumetric (3-D) power sources — the ``q_V`` term of the heat equation.

Experiment B places "a single-layer uniform volumetric power with a
thickness of 0.05 mm and the value of 0.000625 W" inside the chip
(Sec. V-B); :class:`UniformLayerPower` models exactly that.  A grid-based
variant supports arbitrary 3-D power maps (the paper's future-work item).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.interpolate import RegularGridInterpolator

from ..geometry.cuboid import Cuboid


class VolumetricPower:
    """Base class: power density in W/m^3 at SI points."""

    def density(self, points: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def total_power(self) -> float:
        """Integrated source power in watts."""
        raise NotImplementedError

    def __call__(self, points: np.ndarray) -> np.ndarray:
        return self.density(points)

    def cell_average(
        self, points: np.ndarray, dz_lo: np.ndarray, dz_hi: np.ndarray,
        n_sub: int = 16,
    ) -> np.ndarray:
        """Average density over each node's z control interval.

        Point-sampling a source layer thinner than a grid cell either
        misses it or over-counts it by up to a full cell width; the FV
        assembler therefore integrates the density over the control
        volume.  The generic implementation uses composite-midpoint
        quadrature along z (where layer discontinuities live);
        :class:`UniformLayerPower` overrides it with the exact overlap.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        dz_lo = np.broadcast_to(np.asarray(dz_lo, dtype=np.float64),
                                points.shape[0])
        dz_hi = np.broadcast_to(np.asarray(dz_hi, dtype=np.float64),
                                points.shape[0])
        width = dz_lo + dz_hi
        total = np.zeros(points.shape[0])
        shifted = points.copy()
        for k in range(n_sub):
            fraction = (k + 0.5) / n_sub
            shifted[:, 2] = points[:, 2] - dz_lo + fraction * width
            total += self.density(shifted)
        return total / n_sub


class ZeroPower(VolumetricPower):
    """No internal heat generation (Experiment A)."""

    def density(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(points)
        return np.zeros(points.shape[0])

    def total_power(self) -> float:
        return 0.0


class UniformLayerPower(VolumetricPower):
    """Uniform heating inside one horizontal slab of a chip.

    Parameters
    ----------
    z_interval:
        (z0, z1) bounds of the active layer in metres.
    total_power:
        Total dissipated power in watts, spread uniformly over
        ``footprint_area * (z1 - z0)``.
    footprint_area:
        Chip footprint in m^2.
    """

    def __init__(
        self,
        z_interval: Tuple[float, float],
        total_power: float,
        footprint_area: float,
    ):
        z0, z1 = float(z_interval[0]), float(z_interval[1])
        if z1 <= z0:
            raise ValueError(f"empty layer interval ({z0}, {z1})")
        if footprint_area <= 0:
            raise ValueError("footprint area must be positive")
        self.z_interval = (z0, z1)
        self._total_power = float(total_power)
        self.footprint_area = float(footprint_area)
        self.q_density = self._total_power / (self.footprint_area * (z1 - z0))

    def density(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        z = points[:, 2]
        inside = (z >= self.z_interval[0]) & (z <= self.z_interval[1])
        return np.where(inside, self.q_density, 0.0)

    def total_power(self) -> float:
        return self._total_power

    def cell_average(
        self, points: np.ndarray, dz_lo: np.ndarray, dz_hi: np.ndarray,
        n_sub: int = 16,
    ) -> np.ndarray:
        """Exact overlap of each control interval with the power layer."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        z = points[:, 2]
        lo = z - np.broadcast_to(np.asarray(dz_lo, dtype=np.float64), z.shape)
        hi = z + np.broadcast_to(np.asarray(dz_hi, dtype=np.float64), z.shape)
        overlap = np.maximum(
            0.0,
            np.minimum(hi, self.z_interval[1]) - np.maximum(lo, self.z_interval[0]),
        )
        width = np.maximum(hi - lo, 1e-300)
        return self.q_density * overlap / width

    @classmethod
    def paper_experiment_b(cls, chip: Cuboid) -> "UniformLayerPower":
        """The 0.625 mW / 0.05 mm-thick source of Sec. V-B.

        The paper does not state the layer's z position; we centre the
        0.05 mm slab in the middle of the 0.55 mm chip, matching Fig. 1's
        "middle layer of the bottom cuboid" schematic.
        """
        z_mid = float(chip.center[2])
        half = 0.025e-3
        footprint = float(chip.size[0] * chip.size[1])
        return cls((z_mid - half, z_mid + half), 0.000625, footprint)


class GridVolumetricPower(VolumetricPower):
    """Trilinear interpolation of a nodal (n1, n2, n3) density map (W/m^3)."""

    def __init__(self, values: np.ndarray, cuboid: Cuboid):
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 3:
            raise ValueError(f"need a 3-D density array, got shape {values.shape}")
        self.values = values
        self.cuboid = cuboid
        axes = tuple(
            np.linspace(cuboid.lo[axis], cuboid.hi[axis], values.shape[axis])
            for axis in range(3)
        )
        self._interp = RegularGridInterpolator(axes, values, method="linear")

    def density(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64)).copy()
        for axis in range(3):
            points[:, axis] = np.clip(
                points[:, axis], self.cuboid.lo[axis], self.cuboid.hi[axis]
            )
        return self._interp(points)

    def total_power(self) -> float:
        """Trapezoidal integral of the density over the cuboid."""
        axes = tuple(
            np.linspace(self.cuboid.lo[a], self.cuboid.hi[a], self.values.shape[a])
            for a in range(3)
        )
        integral = np.trapezoid(
            np.trapezoid(np.trapezoid(self.values, axes[2], axis=2), axes[1], axis=1),
            axes[0],
            axis=0,
        )
        return float(integral)
