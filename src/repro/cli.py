"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``info``      package/version and preset inventory
``solve``     run the FV reference solver on a paper workload
``train``     train a preset and save the checkpoint
``evaluate``  evaluate a (cached or given) model on the paper's test cases
``speedup``   measure the solver-vs-surrogate speedup table
``sweep``     stream a batch of designs through the compiled serving engine
``transient`` roll a transient surrogate against the theta-scheme reference
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeepOHeat reproduction (DAC 2023) command-line tools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="show version and preset inventory")

    solve = subparsers.add_parser("solve", help="run the FV reference solver")
    solve.add_argument("--experiment", choices=["a", "b"], default="a")
    solve.add_argument("--map", dest="map_name", default="p5",
                       help="test power map p1..p10 (experiment a)")
    solve.add_argument("--htc", nargs=2, type=float, default=[1000.0, 333.33],
                       metavar=("TOP", "BOTTOM"),
                       help="HTC pair in W/m^2K (experiment b)")
    solve.add_argument("--grid", nargs=3, type=int, default=None,
                       metavar=("NX", "NY", "NZ"))

    train = subparsers.add_parser("train", help="train a preset model")
    train.add_argument("--experiment",
                       choices=["a", "b", "volumetric", "transient"],
                       default="a")
    train.add_argument("--scale", choices=["test", "ci", "paper"], default="ci")
    train.add_argument("--iterations", type=int, default=None,
                       help="override the preset's iteration budget")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--output", default=None, help="checkpoint path (.npz)")
    train.add_argument("--quiet", action="store_true")

    evaluate = subparsers.add_parser(
        "evaluate", help="evaluate a trained model on the paper's test cases"
    )
    evaluate.add_argument("--experiment", choices=["a", "b"], default="a")
    evaluate.add_argument("--scale", choices=["test", "ci"], default="ci")
    evaluate.add_argument("--checkpoint", default=None,
                          help="explicit checkpoint (defaults to the cache)")

    speedup = subparsers.add_parser("speedup", help="solver vs surrogate timing")
    speedup.add_argument("--experiment", choices=["a", "b"], default="a")
    speedup.add_argument("--scale", choices=["test", "ci"], default="ci")
    speedup.add_argument("--batch", type=int, default=32)
    speedup.add_argument("--refine", type=int, default=2)

    sweep = subparsers.add_parser(
        "sweep",
        help="stream a batch of sampled designs through the serving engine",
    )
    sweep.add_argument("--experiment", choices=["a", "b"], default="a")
    sweep.add_argument("--scale", choices=["test", "ci"], default="ci")
    sweep.add_argument("--checkpoint", default=None,
                       help="explicit checkpoint (defaults to the cache)")
    sweep.add_argument("--designs", type=int, default=64,
                       help="number of random designs to evaluate")
    sweep.add_argument("--chunk", type=int, default=16,
                       help="designs per predict_batch call (streaming chunk)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--compare-naive", action="store_true",
                       help="also time the legacy per-design predict loop")
    sweep.add_argument("--validate", type=int, default=0, metavar="N",
                       help="FDM-validate the N hottest designs through the "
                            "shared-operator solve farm")

    transient = subparsers.add_parser(
        "transient",
        help="transient rollout on a power-pulse scenario vs the "
             "theta-scheme reference",
    )
    transient.add_argument("--scale", choices=["test", "ci"], default="ci")
    transient.add_argument("--scenario", choices=["step", "ramp", "clock"],
                           default="step",
                           help="held-out power pulse to evaluate")
    transient.add_argument("--times", type=int, default=9,
                           help="instants compared across the horizon")
    transient.add_argument("--steps-per-interval", type=int, default=8,
                           help="implicit reference steps per instant")
    transient.add_argument("--theta", type=float, default=1.0,
                           help="time scheme: 1.0 backward Euler, "
                                "0.5 Crank-Nicolson")
    transient.add_argument("--early-stop", type=float, default=None,
                           metavar="TOL",
                           help="stop the reference once the peak settles "
                                "below TOL K/s (convergence to steady state)")
    transient.add_argument("--checkpoint", default=None,
                           help="explicit checkpoint (defaults to the cache)")
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations (each returns an exit code).
# ----------------------------------------------------------------------
def _cmd_info(args) -> int:
    from . import __version__
    from .analysis import kv_block

    print(
        kv_block(
            f"repro {__version__} — DeepOHeat reproduction (DAC 2023)",
            {
                "experiment a": "2D power maps, 1x1x0.5 mm chip (Sec. V-A)",
                "experiment b": "dual HTC inputs, volumetric layer (Sec. V-B)",
                "experiment volumetric": "3D power maps (Sec. VI future work)",
                "experiment transient": "time-modulated power pulses (eq. 1)",
                "scales": "test (seconds) / ci (minutes) / paper (hours)",
                "benches": "pytest benchmarks/ --benchmark-only",
            },
        )
    )
    return 0


def _experiment_setup(name: str, scale: str):
    from .core import (
        experiment_a,
        experiment_b,
        experiment_transient,
        experiment_volumetric,
    )

    factories = {
        "a": experiment_a,
        "b": experiment_b,
        "volumetric": experiment_volumetric,
        "transient": experiment_transient,
    }
    return factories[name](scale=scale)


def _trained_setup(name: str, scale: str, checkpoint: Optional[str]):
    """A ready-to-evaluate setup: checkpoint-backed or cache-trained.

    An explicit checkpoint supplies the weights, so the preset is built
    untrained and loaded instead of training (or cache-loading) a model
    whose weights the checkpoint would immediately overwrite.
    """
    if checkpoint:
        setup = _experiment_setup(name, scale)
        setup.model.load(checkpoint)
        return setup
    from .experiments import get_trained_setup

    return get_trained_setup(name, scale=scale)


def _cmd_solve(args) -> int:
    from .analysis import ascii_heatmap, kv_block
    from .fdm import solve_steady
    from .geometry import StructuredGrid
    from .power import paper_test_suite, tiles_to_grid

    setup = _experiment_setup(args.experiment, "ci")
    grid = setup.eval_grid
    if args.grid is not None:
        grid = StructuredGrid(setup.model.config.chip, tuple(args.grid))

    if args.experiment == "a":
        suite = {m.name: m for m in paper_test_suite()}
        if args.map_name not in suite:
            print(f"unknown map {args.map_name!r}; choose p1..p10", file=sys.stderr)
            return 2
        tiles = suite[args.map_name].tiles
        design = {
            "power_map": tiles_to_grid(tiles, setup.model.inputs[0].map_shape)
        }
        label = f"experiment a / {args.map_name}"
    else:
        design = {"htc_top": args.htc[0], "htc_bottom": args.htc[1]}
        label = f"experiment b / h=({args.htc[0]:g}, {args.htc[1]:g})"

    solution = solve_steady(setup.model.concrete_config(design).heat_problem(grid))
    report = solution.info["energy"]
    print(
        kv_block(
            f"FV solve — {label} on {grid.shape}",
            {
                "T max": f"{solution.t_max:.3f} K",
                "T min": f"{solution.t_min:.3f} K",
                "injected power": f"{report.injected * 1e3:.4f} mW",
                "energy imbalance": f"{report.relative_imbalance:.2e}",
                "solve time": f"{solution.info['total_time'] * 1e3:.1f} ms",
            },
        )
    )
    top = solution.to_array()[:, :, -1]
    print()
    print(ascii_heatmap(top, "top-surface temperature (K)"))
    return 0


def _cmd_train(args) -> int:
    from .analysis import model_summary

    try:
        setup = _experiment_setup(args.experiment, args.scale)
    except ValueError as error:
        # e.g. presets without a paper-scale variant (volumetric,
        # transient): report cleanly instead of a raw traceback.
        print(str(error), file=sys.stderr)
        return 2
    if args.iterations is not None:
        setup.trainer_config.iterations = args.iterations
    if args.seed:
        setup.trainer_config.seed = args.seed
    print(f"training {setup.name} ({setup.scale}): {setup.description}")
    print(model_summary(setup.model))
    history = setup.make_trainer().run(verbose=not args.quiet)
    print(
        f"loss {history.initial_loss:.4e} -> {history.final_loss:.4e} "
        f"in {history.wall_time:.1f} s"
    )
    output = args.output
    if output is None:
        output = f"{setup.name}-{setup.scale}.npz"
    setup.model.save(output, meta={"final_loss": history.final_loss})
    print(f"checkpoint written to {output}")
    return 0


def _cmd_evaluate(args) -> int:
    from .analysis import format_table
    from .experiments import run_experiment_a, run_experiment_b

    setup = _trained_setup(args.experiment, args.scale, args.checkpoint)

    if args.experiment == "a":
        result = run_experiment_a(setup)
        print(result.table_one_text())
    else:
        result = run_experiment_b(setup)
        print(
            format_table(
                ["(h_top, h_bottom)", "MAPE %", "PAPE %", "paper", "peak err K"],
                result.summary_rows(),
            )
        )
    return 0


def _cmd_speedup(args) -> int:
    from .experiments import get_trained_setup, run_speedup_study

    setup = get_trained_setup(args.experiment, scale=args.scale)
    paper = {
        "a": dict(paper_solver_seconds=300.0, paper_speedup_cpu=3000.0,
                  paper_speedup_gpu=300000.0),
        "b": dict(paper_solver_seconds=120.0, paper_speedup_cpu=1200.0,
                  paper_speedup_gpu=120000.0),
    }[args.experiment]
    study = run_speedup_study(
        setup, refine_factor=args.refine, batch_size=args.batch, **paper
    )
    print(study.format())
    return 0


def _cmd_sweep(args) -> int:
    import time

    from .analysis import kv_block, model_summary

    setup = _trained_setup(args.experiment, args.scale, args.checkpoint)
    model = setup.model
    grid = setup.eval_grid
    n_designs = max(1, args.designs)
    chunk_size = max(1, args.chunk)
    rng = np.random.default_rng(args.seed)

    # One stacked raw batch per branch input, streamed through in chunks.
    raws = {
        config_input.name: config_input.sample(rng, n_designs)
        for config_input in model.inputs
    }
    engine = model.compile()
    engine.warmup(grid)

    start = time.perf_counter()
    peaks = []
    for lo in range(0, n_designs, chunk_size):
        hi = min(n_designs, lo + chunk_size)
        fields = engine.predict_batch(
            {name: batch[lo:hi] for name, batch in raws.items()}, grid=grid
        )
        peaks.append(fields.max(axis=1))
    elapsed = time.perf_counter() - start
    peaks = np.concatenate(peaks)

    print(model_summary(model, title=f"sweep — {setup.name} ({setup.scale})"))
    print()
    cache = engine.cache_info()
    values = {
        "designs": n_designs,
        "grid": "x".join(str(n) for n in grid.shape) + f" ({grid.n_nodes} nodes)",
        "chunk size": chunk_size,
        "engine time": f"{elapsed * 1e3:.1f} ms",
        "throughput": f"{n_designs / max(elapsed, 1e-12):.0f} designs/s",
        "trunk cache": f"{cache.hits} hits / {cache.misses} misses",
        "peak T across sweep": f"{peaks.max():.3f} K",
        "coolest peak T": f"{peaks.min():.3f} K",
    }

    if args.validate > 0:
        from .fdm import get_default_farm

        n_validate = min(args.validate, n_designs)
        hottest = np.argsort(peaks)[::-1][:n_validate]
        farm = get_default_farm()
        problems = [
            setup.model.concrete_config(
                {name: batch[index] for name, batch in raws.items()}
            ).heat_problem(grid)
            for index in hottest
        ]
        start = time.perf_counter()
        references = farm.solve_many(problems)
        farm_elapsed = time.perf_counter() - start
        peak_errors = [
            abs(reference.t_max - peaks[index])
            for index, reference in zip(hottest, references)
        ]
        worst_energy = max(
            abs(reference.info["energy"].relative_imbalance)
            for reference in references
        )
        farm_info = farm.cache_info()
        values["farm validation"] = (
            f"{n_validate} hottest designs in {farm_elapsed * 1e3:.1f} ms "
            f"({n_validate / max(farm_elapsed, 1e-12):.1f} solves/s)"
        )
        values["farm operator reuse"] = (
            f"{farm_info['operator_hits']} hits / "
            f"{farm_info['operator_misses']} misses, "
            f"{farm_info['factorizations']} factorization(s)"
        )
        values["max |peak error|"] = f"{max(peak_errors):.3f} K"
        values["worst energy imbalance"] = f"{worst_energy:.2e}"

    if args.compare_naive:
        n_naive = min(n_designs, 16)
        designs = [
            {name: batch[index] for name, batch in raws.items()}
            for index in range(n_naive)
        ]
        points = grid.points()
        start = time.perf_counter()
        for design in designs:
            model.predict_many_uncached([design], points)
        naive_elapsed = time.perf_counter() - start
        naive_rate = n_naive / max(naive_elapsed, 1e-12)
        values["naive loop"] = (
            f"{naive_rate:.1f} designs/s over {n_naive} designs (legacy path)"
        )
        values["engine speedup"] = (
            f"{(n_designs / max(elapsed, 1e-12)) / max(naive_rate, 1e-12):.1f}x"
        )

    print(kv_block("serving engine sweep", values))
    return 0


def _cmd_transient(args) -> int:
    from .experiments import run_experiment_c

    setup = _trained_setup("transient", args.scale, args.checkpoint)

    result = run_experiment_c(
        setup,
        scenario=args.scenario,
        n_times=args.times,
        steps_per_interval=args.steps_per_interval,
        theta=args.theta,
        early_stop_tol=args.early_stop,
    )
    print(result.summary_text())
    print()
    print(result.table_text())
    cache = setup.model.engine.cache_info()
    print()
    print(
        f"trunk cache: {cache.hits} hits / {cache.misses} misses "
        f"(one space-time block per rollout time grid)"
    )
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "solve": _cmd_solve,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "speedup": _cmd_speedup,
    "sweep": _cmd_sweep,
    "transient": _cmd_transient,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
