"""Command-line interface: ``python -m repro <subcommand>``.

Every subcommand is a thin adapter over the declarative scenario API
(:mod:`repro.api`): presets become :class:`~repro.api.ThermalScenario`
specs and all execution routes through one
:class:`~repro.api.ThermalService` session.

Subcommands
-----------
``info``             package/version and preset inventory (``--json``)
``solve``            run the FV reference solver on a paper workload
``train``            train a preset and save the checkpoint
``evaluate``         evaluate a (cached or given) model on the paper's tests
``speedup``          measure the solver-vs-surrogate speedup table
``sweep``            stream a batch of designs through the engine (``--json``)
``transient``        roll a transient surrogate against the theta reference
``validate-config``  check a scenario (or family) JSON, listing every
                     problem found
``run``              validate → solve → train → predict/rollout a scenario
                     JSON end-to-end (new workloads without new code)
``serve``            long-running daemon: newline-JSON socket protocol
                     with cross-request micro-batching (``repro.serve``)
``family``           train one conditioned surrogate across a
                     ``ScenarioFamily`` JSON (``repro.family``)
``finetune``         warm-start a covered scenario from its family
                     checkpoint (records ``parent_digest`` lineage)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeepOHeat reproduction (DAC 2023) command-line tools",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="parallel execution width: worker processes for FDM solves and "
             "training shards, threads for serving matmuls (default: the "
             "REPRO_WORKERS env var, else 1; 0 means all cores). Give it "
             "before the subcommand: repro --workers 4 solve ...",
    )
    parser.add_argument(
        "--solver", choices=["auto", "lu", "block_cg", "recycled"],
        default=None,
        help="FDM solver tier for reference solves (default: per-grid "
             "legacy behaviour). 'auto' picks by operator size and memory "
             "budget; see docs/solvers.md. Give it before the subcommand: "
             "repro --solver auto solve ...",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="show version and preset inventory")
    info.add_argument("--json", action="store_true",
                      help="machine-readable output (version, schema, presets)")
    info.add_argument("--config", default=None, metavar="JSON",
                      help="scenario or family JSON: also report its digest, "
                           "registry checkpoint and lineage chain")

    solve = subparsers.add_parser("solve", help="run the FV reference solver")
    solve.add_argument("--experiment", choices=["a", "b"], default="a")
    solve.add_argument("--map", dest="map_name", default="p5",
                       help="test power map p1..p10 (experiment a)")
    solve.add_argument("--htc", nargs=2, type=float, default=[1000.0, 333.33],
                       metavar=("TOP", "BOTTOM"),
                       help="HTC pair in W/m^2K (experiment b)")
    solve.add_argument("--grid", nargs=3, type=int, default=None,
                       metavar=("NX", "NY", "NZ"))

    train = subparsers.add_parser("train", help="train a preset model")
    train.add_argument("--experiment",
                       choices=["a", "b", "volumetric", "transient"],
                       default="a")
    train.add_argument("--scale", choices=["test", "ci", "paper"], default="ci")
    train.add_argument("--iterations", type=int, default=None,
                       help="override the preset's iteration budget")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--output", default=None, help="checkpoint path (.npz)")
    train.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="autosave resumable trainer state every N "
                            "iterations (crash-safe; see --resume)")
    train.add_argument("--resume", action="store_true",
                       help="continue from the autosaved trainer state if "
                            "present (bitwise-identical to an uninterrupted "
                            "run); a missing snapshot starts fresh")
    train.add_argument("--quiet", action="store_true")

    evaluate = subparsers.add_parser(
        "evaluate", help="evaluate a trained model on the paper's test cases"
    )
    evaluate.add_argument("--experiment", choices=["a", "b"], default="a")
    evaluate.add_argument("--scale", choices=["test", "ci"], default="ci")
    evaluate.add_argument("--checkpoint", default=None,
                          help="explicit checkpoint (defaults to the cache)")

    speedup = subparsers.add_parser("speedup", help="solver vs surrogate timing")
    speedup.add_argument("--experiment", choices=["a", "b"], default="a")
    speedup.add_argument("--scale", choices=["test", "ci"], default="ci")
    speedup.add_argument("--batch", type=int, default=32)
    speedup.add_argument("--refine", type=int, default=2)

    sweep = subparsers.add_parser(
        "sweep",
        help="stream a batch of sampled designs through the serving engine",
    )
    sweep.add_argument("--experiment", choices=["a", "b"], default="a")
    sweep.add_argument("--scale", choices=["test", "ci"], default="ci")
    sweep.add_argument("--checkpoint", default=None,
                       help="explicit checkpoint (defaults to the cache)")
    sweep.add_argument("--designs", type=int, default=64,
                       help="number of random designs to evaluate")
    sweep.add_argument("--chunk", type=int, default=16,
                       help="designs per predict_batch call (streaming chunk)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--compare-naive", action="store_true",
                       help="also time the legacy per-design predict loop")
    sweep.add_argument("--validate", type=int, default=0, metavar="N",
                       help="FDM-validate the N hottest designs through the "
                            "shared-operator solve farm")
    sweep.add_argument("--json", action="store_true",
                       help="machine-readable sweep result")

    transient = subparsers.add_parser(
        "transient",
        help="transient rollout on a power-pulse scenario vs the "
             "theta-scheme reference",
    )
    transient.add_argument("--scale", choices=["test", "ci"], default="ci")
    transient.add_argument("--scenario", choices=["step", "ramp", "clock"],
                           default="step",
                           help="held-out power pulse to evaluate")
    transient.add_argument("--times", type=int, default=9,
                           help="instants compared across the horizon")
    transient.add_argument("--steps-per-interval", type=int, default=8,
                           help="implicit reference steps per instant")
    transient.add_argument("--theta", type=float, default=1.0,
                           help="time scheme: 1.0 backward Euler, "
                                "0.5 Crank-Nicolson")
    transient.add_argument("--early-stop", type=float, default=None,
                           metavar="TOL",
                           help="stop the reference once the peak settles "
                                "below TOL K/s (convergence to steady state)")
    transient.add_argument("--checkpoint", default=None,
                           help="explicit checkpoint (defaults to the cache)")

    validate = subparsers.add_parser(
        "validate-config",
        help="validate a scenario JSON (exit 0 on ok, 2 on errors)",
    )
    validate.add_argument("config", help="path to a ThermalScenario .json")

    run = subparsers.add_parser(
        "run",
        help="run a scenario JSON end-to-end: validate, reference-solve, "
             "train (registry-cached), predict or rollout",
    )
    run.add_argument("--config", required=True,
                     help="path to a ThermalScenario .json")
    run.add_argument("--designs", type=int, default=4,
                     help="sampled designs for the serving stage")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--force-retrain", action="store_true",
                     help="ignore the checkpoint registry")
    run.add_argument("--parity-tol", type=float, default=1e-8,
                     help="max |engine - reference path| kelvin before the "
                          "serving stage is declared broken (exit 3)")
    run.add_argument("--json", action="store_true",
                     help="machine-readable pipeline report")
    run.add_argument("--quiet", action="store_true")

    serve = subparsers.add_parser(
        "serve",
        help="serving daemon: micro-batched predict/rollout/solve over a "
             "newline-JSON socket",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7070,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--scenario", action="append", default=[],
                       metavar="JSON", dest="scenarios",
                       help="scenario (or family) JSON to warm-start at boot "
                            "(exact registry hit, family-ancestor fallback, "
                            "or boot-time training); repeatable")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="most requests fused into one engine call "
                            "(1 disables fusion)")
    serve.add_argument("--max-wait-ms", type=float, default=5.0,
                       help="micro-batching window: how long the oldest "
                            "request waits for company")
    serve.add_argument("--queue-depth", type=int, default=128,
                       help="pending-request bound; beyond it requests are "
                            "rejected with 'overloaded' + retry_after")
    serve.add_argument("--memory-budget-mb", type=float, default=None,
                       metavar="MB",
                       help="byte budget over the trunk-feature and "
                            "operator caches (byte-accounted LRU eviction)")
    serve.add_argument("--watchdog-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="declare the compute thread wedged after one "
                            "dispatch runs this long: pending requests fail "
                            "cleanly and the daemon exits 2 (default: off)")

    family = subparsers.add_parser(
        "family",
        help="train one conditioned surrogate across a ScenarioFamily JSON",
    )
    family.add_argument("action", choices=["train"],
                        help="family operation")
    family.add_argument("--config", required=True,
                        help="path to a ScenarioFamily .json")
    family.add_argument("--force-retrain", action="store_true",
                        help="ignore the checkpoint registry")
    family.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="autosave resumable trainer state every N "
                             "iterations (crash-safe; see --resume)")
    family.add_argument("--resume", action="store_true",
                        help="continue from the autosaved trainer state if "
                             "present (bitwise-identical to an uninterrupted "
                             "run); a missing snapshot starts fresh")
    family.add_argument("--quiet", action="store_true")

    finetune = subparsers.add_parser(
        "finetune",
        help="fine-tune a family checkpoint to one covered scenario "
             "(records parent_digest lineage)",
    )
    finetune.add_argument("--config", required=True,
                          help="target ThermalScenario .json (must be "
                               "covered by the family's envelope)")
    finetune.add_argument("--family", required=True, dest="family_config",
                          metavar="JSON",
                          help="ScenarioFamily .json to warm-start from "
                               "(trained first if its checkpoint is missing)")
    finetune.add_argument("--iterations", type=int, default=None,
                          help="fine-tune budget (default: the scenario's "
                               "own training.iterations)")
    finetune.add_argument("--force-retrain", action="store_true",
                          help="ignore a cached fine-tuned checkpoint")
    finetune.add_argument("--quiet", action="store_true")
    return parser


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------
def _service(workers: Optional[int] = None, solver: Optional[str] = None):
    """A service session rooted at the shared model cache.

    Reads ``DEFAULT_CACHE_DIR`` through :mod:`repro.experiments.common`
    at call time so test fixtures (and ``REPRO_MODEL_CACHE``) take
    effect.
    """
    from .api import ThermalService
    from .experiments import common

    return ThermalService(cache_dir=common.DEFAULT_CACHE_DIR,
                          workers=workers, solver=solver)


def _trained(service, name: str, scale: str, checkpoint: Optional[str]):
    """(scenario, setup) ready to evaluate: checkpoint- or registry-backed."""
    from .api import scenario_for

    scenario = scenario_for(name, scale=scale)
    if checkpoint:
        service.load_checkpoint(scenario, checkpoint)
    else:
        service.train(scenario)
    return scenario, service.setup(scenario)


def _jsonable(value):
    """Recursively convert numpy scalars/arrays for ``json.dumps``."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


# ----------------------------------------------------------------------
# Subcommand implementations (each returns an exit code).
# ----------------------------------------------------------------------
def _config_report(path: str):
    """Digest/checkpoint/lineage report for a scenario or family JSON."""
    from pathlib import Path

    from .api import ScenarioValidationError
    from .family import ScenarioFamily, sniff_family_json
    from .nn.serialize import CheckpointCorrupt

    report = {"path": path}
    try:
        if sniff_family_json(Path(path)):
            spec = ScenarioFamily.from_json(Path(path))
            report["kind"] = "family"
            report["n_members"] = spec.n_members
        else:
            spec, errors = _load_scenario(path)
            if errors:
                report["errors"] = errors
                return report
            report["kind"] = "scenario"
    except ScenarioValidationError as error:
        report["errors"] = list(error.errors)
        return report
    report["name"] = spec.name
    report["digest"] = spec.content_digest()

    registry = _service().registry
    checkpoint = None
    if report["kind"] == "scenario":
        checkpoint = registry.find_fine_tuned(spec)
    checkpoint = checkpoint or registry.find(spec)
    report["checkpoint"] = None if checkpoint is None else str(checkpoint)
    try:
        report["lineage"] = registry.lineage(spec)
    except CheckpointCorrupt as error:
        report["lineage_error"] = str(error)
    return report


def _cmd_info(args) -> int:
    from . import __version__
    from .api import SCHEMA_VERSION, preset_inventory

    if args.json:
        payload = {
            "version": __version__,
            "scenario_schema_version": SCHEMA_VERSION,
            "presets": preset_inventory(),
            "scales": ["test", "ci", "paper"],
            "commands": ["info", "solve", "train", "evaluate", "speedup",
                         "sweep", "transient", "validate-config", "run",
                         "serve", "family", "finetune"],
        }
        if args.config:
            payload["config"] = _config_report(args.config)
        print(json.dumps(_jsonable(payload), indent=2))
        return 0

    if args.config:
        report = _config_report(args.config)
        if "errors" in report:
            print(f"{args.config}: INVALID ({len(report['errors'])} error(s))")
            for error in report["errors"]:
                print(f"  - {error}")
            return 2
        print(f"{args.config}: {report['kind']} {report['name']} "
              f"(digest {report['digest'][:16]})")
        print(f"  checkpoint: {report['checkpoint'] or '<none>'}")
        for entry in report.get("lineage", []):
            parent = entry["parent_digest"]
            print(f"  lineage: {entry['digest'][:16]} <- "
                  f"{'<root>' if parent is None else parent[:16]}")
        if "lineage_error" in report:
            print(f"  lineage: ERROR {report['lineage_error']}")
        return 0

    from .analysis import kv_block

    print(
        kv_block(
            f"repro {__version__} — DeepOHeat reproduction (DAC 2023)",
            {
                "experiment a": "2D power maps, 1x1x0.5 mm chip (Sec. V-A)",
                "experiment b": "dual HTC inputs, volumetric layer (Sec. V-B)",
                "experiment volumetric": "3D power maps (Sec. VI future work)",
                "experiment transient": "time-modulated power pulses (eq. 1)",
                "scales": "test (seconds) / ci (minutes) / paper (hours)",
                "scenario API": "repro run --config <scenario.json> "
                                "(repro.api.ThermalScenario)",
                "benches": "pytest benchmarks/ --benchmark-only",
            },
        )
    )
    return 0


def _cmd_solve(args) -> int:
    from .analysis import ascii_heatmap, kv_block
    from .api import scenario_for
    from .power import paper_test_suite, tiles_to_grid

    service = _service(args.workers, args.solver)
    scenario = scenario_for(args.experiment, scale="ci")
    setup = service.setup(scenario)

    if args.experiment == "a":
        suite = {m.name: m for m in paper_test_suite()}
        if args.map_name not in suite:
            print(f"unknown map {args.map_name!r}; choose p1..p10", file=sys.stderr)
            return 2
        tiles = suite[args.map_name].tiles
        design = {
            "power_map": tiles_to_grid(tiles, setup.model.inputs[0].map_shape)
        }
        label = f"experiment a / {args.map_name}"
    else:
        design = {"htc_top": args.htc[0], "htc_bottom": args.htc[1]}
        label = f"experiment b / h=({args.htc[0]:g}, {args.htc[1]:g})"

    result = service.solve(
        scenario, designs=[design],
        grid_shape=tuple(args.grid) if args.grid is not None else None,
    )
    field = result.fields[0]
    print(
        kv_block(
            f"FV solve — {label} on {result.grid_shape}",
            {
                "T max": f"{result.peaks[0]:.3f} K",
                "T min": f"{field.min():.3f} K",
                "injected power": f"{result.injected_power[0] * 1e3:.4f} mW",
                "energy imbalance": f"{result.energy_imbalance[0]:.2e}",
                "solve time": f"{result.elapsed * 1e3:.1f} ms",
            },
        )
    )
    print()
    print(ascii_heatmap(field[:, :, -1], "top-surface temperature (K)"))
    return 0


def _cmd_train(args) -> int:
    from .analysis import model_summary
    from .api import scenario_for

    try:
        scenario = scenario_for(args.experiment, scale=args.scale)
    except ValueError as error:
        # e.g. presets without a paper-scale variant (volumetric,
        # transient): report cleanly instead of a raw traceback.
        print(str(error), file=sys.stderr)
        return 2
    if args.iterations is not None:
        scenario.training.iterations = args.iterations
    if args.seed:
        scenario.training.seed = args.seed

    service = _service(args.workers, args.solver)
    setup = service.setup(scenario)
    print(f"training {setup.name} ({setup.scale}): {setup.description}")
    print(model_summary(setup.model))
    output = args.output
    if output is None:
        output = f"{setup.name}-{setup.scale}.npz"
    trainer = setup.make_trainer()
    state_path = None
    if args.checkpoint_every is not None:
        trainer.config.checkpoint_every = args.checkpoint_every
    if args.resume or trainer.config.checkpoint_every:
        # Resumable trainer state rides next to the final checkpoint; it
        # is deleted once the run completes.
        state_path = f"{output}.train"
    history = trainer.run(verbose=not args.quiet,
                          checkpoint_path=state_path, resume=args.resume)
    print(
        f"loss {history.initial_loss:.4e} -> {history.final_loss:.4e} "
        f"in {history.wall_time:.1f} s"
    )
    setup.model.save(output, meta={
        "final_loss": history.final_loss,
        "scenario_digest": scenario.content_digest(),
    })
    if state_path is not None:
        Path(f"{state_path}.npz").unlink(missing_ok=True)
    print(f"checkpoint written to {output}")
    return 0


def _cmd_evaluate(args) -> int:
    from .analysis import format_table
    from .experiments import run_experiment_a, run_experiment_b

    _, setup = _trained(_service(args.workers, args.solver), args.experiment, args.scale,
                        args.checkpoint)

    if args.experiment == "a":
        result = run_experiment_a(setup)
        print(result.table_one_text())
    else:
        result = run_experiment_b(setup)
        print(
            format_table(
                ["(h_top, h_bottom)", "MAPE %", "PAPE %", "paper", "peak err K"],
                result.summary_rows(),
            )
        )
    return 0


def _cmd_speedup(args) -> int:
    from .experiments import get_trained_setup, run_speedup_study

    setup = get_trained_setup(args.experiment, scale=args.scale)
    paper = {
        "a": dict(paper_solver_seconds=300.0, paper_speedup_cpu=3000.0,
                  paper_speedup_gpu=300000.0),
        "b": dict(paper_solver_seconds=120.0, paper_speedup_cpu=1200.0,
                  paper_speedup_gpu=120000.0),
    }[args.experiment]
    study = run_speedup_study(
        setup, refine_factor=args.refine, batch_size=args.batch, **paper
    )
    print(study.format())
    return 0


def _cmd_sweep(args) -> int:
    import time

    from .analysis import kv_block, model_summary

    service = _service(args.workers, args.solver)
    scenario, setup = _trained(service, args.experiment, args.scale,
                               args.checkpoint)
    result = service.sweep(
        scenario,
        n_designs=args.designs,
        chunk_size=args.chunk,
        seed=args.seed,
        validate=args.validate,
    )

    naive_rate = None
    if args.compare_naive:
        n_naive = min(result.n_designs, 16)
        designs = [result.design(index) for index in range(n_naive)]
        points = setup.eval_grid.points()
        start = time.perf_counter()
        for design in designs:
            setup.model.predict_many_uncached([design], points)
        naive_elapsed = time.perf_counter() - start
        naive_rate = n_naive / max(naive_elapsed, 1e-12)

    if args.json:
        payload = {
            "scenario": result.scenario_name,
            "scale": scenario.scale,
            "digest": result.digest,
            "designs": result.n_designs,
            "chunk_size": result.chunk_size,
            "grid_shape": list(result.grid_shape),
            "elapsed_seconds": result.elapsed,
            "throughput_designs_per_s": result.throughput,
            "peaks_kelvin": result.peaks,
            "trunk_cache": result.cache,
        }
        if result.validation is not None:
            payload["validation"] = {
                "design_indices": result.validation.design_indices,
                "reference_peaks": result.validation.reference_peaks,
                "peak_errors": result.validation.peak_errors,
                "worst_energy_imbalance":
                    result.validation.worst_energy_imbalance,
                "elapsed_seconds": result.validation.elapsed,
                "farm_stats": result.validation.farm_stats,
            }
        if naive_rate is not None:
            payload["naive_designs_per_s"] = naive_rate
            payload["engine_speedup"] = result.throughput / max(naive_rate,
                                                                1e-12)
        print(json.dumps(_jsonable(payload), indent=2))
        return 0

    print(model_summary(setup.model,
                        title=f"sweep — {setup.name} ({setup.scale})"))
    print()
    cache = result.cache
    values = {
        "designs": result.n_designs,
        "grid": "x".join(str(n) for n in result.grid_shape)
                + f" ({int(np.prod(result.grid_shape))} nodes)",
        "chunk size": result.chunk_size,
        "engine time": f"{result.elapsed * 1e3:.1f} ms",
        "throughput": f"{result.throughput:.0f} designs/s",
        "trunk cache": f"{cache['hits']} hits / {cache['misses']} misses",
        "peak T across sweep": f"{result.peaks.max():.3f} K",
        "coolest peak T": f"{result.peaks.min():.3f} K",
    }
    if result.validation is not None:
        validation = result.validation
        n_validate = len(validation.design_indices)
        farm = validation.farm_stats
        values["farm validation"] = (
            f"{n_validate} hottest designs in {validation.elapsed * 1e3:.1f} ms "
            f"({n_validate / max(validation.elapsed, 1e-12):.1f} solves/s)"
        )
        values["farm operator reuse"] = (
            f"{farm['operator_hits']} hits / "
            f"{farm['operator_misses']} misses, "
            f"{farm['factorizations']} factorization(s)"
        )
        values["max |peak error|"] = f"{validation.peak_errors.max():.3f} K"
        values["worst energy imbalance"] = (
            f"{validation.worst_energy_imbalance:.2e}"
        )
    if naive_rate is not None:
        values["naive loop"] = (
            f"{naive_rate:.1f} designs/s over "
            f"{min(result.n_designs, 16)} designs (legacy path)"
        )
        values["engine speedup"] = (
            f"{result.throughput / max(naive_rate, 1e-12):.1f}x"
        )

    print(kv_block("serving engine sweep", values))
    return 0


def _cmd_transient(args) -> int:
    from .experiments import run_experiment_c

    service = _service(args.workers, args.solver)
    _, setup = _trained(service, "transient", args.scale, args.checkpoint)

    result = run_experiment_c(
        setup,
        scenario=args.scenario,
        n_times=args.times,
        steps_per_interval=args.steps_per_interval,
        theta=args.theta,
        early_stop_tol=args.early_stop,
    )
    print(result.summary_text())
    print()
    print(result.table_text())
    cache = setup.model.engine.cache_info()
    print()
    print(
        f"trunk cache: {cache.hits} hits / {cache.misses} misses "
        f"(one space-time block per rollout time grid)"
    )
    return 0


def _load_scenario(path: str):
    """(scenario, errors): parse+validate a JSON file, never raising."""
    from pathlib import Path

    from .api import ScenarioValidationError, ThermalScenario

    try:
        return ThermalScenario.from_json(Path(path)), []
    except ScenarioValidationError as error:
        return None, list(error.errors)


def _cmd_validate_config(args) -> int:
    from pathlib import Path

    from .family import sniff_family_json

    if sniff_family_json(Path(args.config)):
        from .api import ScenarioValidationError
        from .family import FAMILY_SCHEMA_VERSION, ScenarioFamily

        try:
            family = ScenarioFamily.from_json(Path(args.config))
        except ScenarioValidationError as error:
            print(f"{args.config}: INVALID ({len(error.errors)} error(s))")
            for err in error.errors:
                print(f"  - {err}")
            return 2
        print(f"{args.config}: ok")
        print(f"  family: {family.name} ({family.n_members} member(s), "
              f"{len(family.axes)} axis(es))")
        print(f"  family schema version: {FAMILY_SCHEMA_VERSION}")
        print(f"  content digest: {family.content_digest()[:16]}")
        return 0

    scenario, errors = _load_scenario(args.config)
    if errors:
        print(f"{args.config}: INVALID ({len(errors)} error(s))")
        for error in errors:
            print(f"  - {error}")
        return 2
    print(f"{args.config}: ok")
    print(f"  scenario: {scenario.name} (scale={scenario.scale})")
    print(f"  schema version: {scenario.schema_version}")
    print(f"  content digest: {scenario.content_digest()[:16]}")
    return 0


def _cmd_run(args) -> int:
    scenario, errors = _load_scenario(args.config)
    if errors:
        print(f"{args.config}: INVALID ({len(errors)} error(s))",
              file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 2

    service = _service(args.workers, args.solver)
    report = {
        "config": args.config,
        "scenario": scenario.name,
        "scale": scenario.scale,
        "digest": scenario.content_digest(),
        "transient": scenario.transient is not None,
    }

    def say(message: str) -> None:
        if not args.quiet and not args.json:
            print(message)

    say(f"[1/4] validate: ok — {scenario.name} "
        f"(digest {scenario.content_digest()[:16]})")

    # [2/4] FDM reference solve of one sampled design.
    solve = service.solve(scenario, n_designs=1, seed=args.seed)
    report["solve"] = {
        "grid_shape": list(solve.grid_shape),
        "peak_kelvin": float(solve.peaks[0]),
        "energy_imbalance": float(solve.energy_imbalance[0]),
        "elapsed_seconds": solve.elapsed,
    }
    say(f"[2/4] solve: peak {solve.peaks[0]:.3f} K on "
        f"{'x'.join(str(n) for n in solve.grid_shape)} "
        f"(imbalance {solve.energy_imbalance[0]:.1e})")

    # [3/4] train (or load from the digest-keyed registry).
    trained = service.train(scenario, force_retrain=args.force_retrain,
                            verbose=False)
    report["train"] = {
        "from_cache": trained.from_cache,
        "checkpoint": str(trained.checkpoint_path),
        "iterations": trained.iterations,
        "final_loss": trained.final_loss,
    }
    say(f"[3/4] train: {'registry hit' if trained.from_cache else 'trained'} "
        f"({trained.iterations} iterations, "
        f"final loss {trained.final_loss:.3e})"
        if trained.final_loss is not None else
        f"[3/4] train: {'registry hit' if trained.from_cache else 'trained'}")

    # [4/4] serve: predict (steady) or rollout (transient), with a hard
    # engine-parity gate against an independent evaluation path.
    n_designs = max(1, args.designs)
    raws = service.sample_designs(scenario, n_designs, seed=args.seed + 1)
    designs = [
        {name: batch[index] for name, batch in raws.items()}
        for index in range(n_designs)
    ]
    setup = service.setup(scenario)
    if scenario.transient is None:
        predicted = service.predict(scenario, designs)
        reference = setup.model.predict_many_uncached(
            designs, setup.eval_grid.points()
        )
        parity = float(np.max(np.abs(predicted.fields - reference)))
        # Informational accuracy check: FDM-solve the first served design
        # (one farm back-substitution — the operator is already cached).
        oracle = service.solve(scenario, designs=[designs[0]])
        fdm_gap = float(abs(predicted.peaks[0] - oracle.peaks[0]))
        report["serve"] = {
            "mode": "predict",
            "designs": n_designs,
            "peak_kelvin": float(predicted.peaks.max()),
            "engine_parity_kelvin": parity,
            "fdm_peak_gap_kelvin": fdm_gap,
            "elapsed_seconds": predicted.elapsed,
        }
        say(f"[4/4] predict: {n_designs} designs, hottest peak "
            f"{predicted.peaks.max():.3f} K, engine parity {parity:.2e} K "
            f"(FDM sample gap {fdm_gap:.3f} K)")
    else:
        times = np.linspace(0.0, scenario.transient.horizon, 5)
        rollout = service.rollout(scenario, designs, times)
        # Independent path: one single-instant space-time block per time
        # (separate trunk tiling/reshape) vs the fused K-instant rollout
        # block — the parity contract bench_transient.py pins at 1e-10.
        engine = service.engine(scenario)
        per_instant = np.stack([
            engine.predict_batch(designs, grid=setup.eval_grid, t=float(ti))
            for ti in times
        ], axis=1)
        parity = float(np.max(np.abs(rollout.fields - per_instant)))
        report["serve"] = {
            "mode": "rollout",
            "designs": n_designs,
            "times_seconds": times,
            "peak_kelvin": float(rollout.peak_traces.max()),
            "engine_parity_kelvin": parity,
            "elapsed_seconds": rollout.elapsed,
        }
        say(f"[4/4] rollout: {n_designs} designs x {len(times)} instants, "
            f"hottest peak {rollout.peak_traces.max():.3f} K, "
            f"per-instant parity {parity:.2e} K")

    ok = bool(np.isfinite(parity)) and parity <= args.parity_tol
    report["parity_ok"] = ok
    if args.json:
        print(json.dumps(_jsonable(report), indent=2))
    if not ok:
        print(f"PARITY FAILURE: engine disagrees with the reference "
              f"path by {parity:.3e} K (tol {args.parity_tol:g})",
              file=sys.stderr)
        return 3
    say("pipeline ok")
    return 0


def _cmd_serve(args) -> int:
    from .experiments import common
    from .serve import serve_main

    budget = (None if args.memory_budget_mb is None
              else int(args.memory_budget_mb * 1024 * 1024))
    return serve_main(
        scenario_paths=args.scenarios,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait=args.max_wait_ms / 1e3,
        queue_depth=args.queue_depth,
        memory_budget=budget,
        workers=args.workers,
        cache_dir=common.DEFAULT_CACHE_DIR,
        watchdog_timeout=args.watchdog_timeout,
        solver=args.solver,
    )


def _cmd_family(args) -> int:
    from pathlib import Path

    from .api import ScenarioValidationError
    from .family import ScenarioFamily

    try:
        family = ScenarioFamily.from_json(Path(args.config))
    except ScenarioValidationError as error:
        print(f"{args.config}: INVALID ({len(error.errors)} error(s))",
              file=sys.stderr)
        for err in error.errors:
            print(f"  - {err}", file=sys.stderr)
        return 2

    service = _service(args.workers, args.solver)
    if not args.quiet:
        print(f"family {family.name}: {family.n_members} member(s), "
              f"digest {family.content_digest()[:16]}")
    result = service.train_family(
        family,
        force_retrain=args.force_retrain,
        verbose=not args.quiet,
        resume=args.resume,
        checkpoint_every=args.checkpoint_every,
    )
    status = "registry hit" if result.from_cache else "trained"
    if result.final_loss is not None:
        status += f", final loss {result.final_loss:.3e}"
    print(f"family {family.name}: {status} ({result.iterations} iterations)")
    print(f"checkpoint: {result.checkpoint_path}")
    return 0


def _cmd_finetune(args) -> int:
    from pathlib import Path

    from .api import ScenarioValidationError
    from .family import ScenarioFamily

    scenario, errors = _load_scenario(args.config)
    if errors:
        print(f"{args.config}: INVALID ({len(errors)} error(s))",
              file=sys.stderr)
        for err in errors:
            print(f"  - {err}", file=sys.stderr)
        return 2
    try:
        family = ScenarioFamily.from_json(Path(args.family_config))
    except ScenarioValidationError as error:
        print(f"{args.family_config}: INVALID ({len(error.errors)} error(s))",
              file=sys.stderr)
        for err in error.errors:
            print(f"  - {err}", file=sys.stderr)
        return 2

    service = _service(args.workers, args.solver)
    try:
        result = service.fine_tune(
            scenario,
            from_family=family,
            iterations=args.iterations,
            force_retrain=args.force_retrain,
            verbose=not args.quiet,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    status = "registry hit" if result.from_cache else "fine-tuned"
    if result.final_loss is not None:
        status += f", final loss {result.final_loss:.3e}"
    print(f"{scenario.name}: {status} ({result.iterations} iterations)")
    print(f"checkpoint: {result.checkpoint_path}")
    for entry in service.lineage(scenario):
        parent = entry["parent_digest"]
        print(f"lineage: {entry['digest'][:16]} <- "
              f"{'<root>' if parent is None else parent[:16]}")
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "solve": _cmd_solve,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "speedup": _cmd_speedup,
    "sweep": _cmd_sweep,
    "transient": _cmd_transient,
    "validate-config": _cmd_validate_config,
    "run": _cmd_run,
    "serve": _cmd_serve,
    "family": _cmd_family,
    "finetune": _cmd_finetune,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    # Arm the fault-injection registry from REPRO_FAULTS so chaos
    # harnesses can target whole CLI runs, not just pool workers
    # (which self-arm in their initializer).  No-op when unset.
    from repro import faults

    faults.load_from_env()
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
