"""Boundary conditions for 3D-IC thermal analysis (paper Sec. III).

Sign conventions (made explicit because the paper's eq. (4)/(5) leave the
orientation of ``d/dy_i`` implicit):

* ``n`` is the *outward* unit normal of a face.
* Fourier's law: heat-flux vector ``q = -k grad(T)``; flux leaving the body
  through a face is ``q . n = -k dT/dn``.
* :class:`NeumannBC` prescribes the *influx* ``P`` (W/m^2, positive heats
  the chip):   ``k dT/dn = P``  — this is the paper's 2-D power map with
  ``q_n = -P`` in its orientation.
* :class:`ConvectionBC` (paper eq. 5): ``-k dT/dn = h (T - T_amb)``.
* :class:`AdiabaticBC` is Neumann with zero influx.
* :class:`DirichletBC` (paper eq. 3): ``T = q_d``.

Each condition exposes per-point parameter evaluation; the FDM assembler
and the PINN residual builder consume the same objects, which keeps the two
solvers physically consistent by construction.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

ValueSpec = Union[float, Callable[[np.ndarray], np.ndarray]]


def _evaluate(spec: ValueSpec, points: np.ndarray) -> np.ndarray:
    """Evaluate a scalar-or-callable spec at (n, 3) SI points."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if callable(spec):
        values = np.asarray(spec(points), dtype=np.float64)
        if values.shape != (points.shape[0],):
            raise ValueError(
                f"boundary value callable returned shape {values.shape}, "
                f"expected ({points.shape[0]},)"
            )
        return values
    return np.full(points.shape[0], float(spec))


class BoundaryCondition:
    """Base class; subclasses define the physics at one face."""

    kind = "base"

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DirichletBC(BoundaryCondition):
    """Fixed temperature ``T = value`` (kelvin)."""

    kind = "dirichlet"

    def __init__(self, value: ValueSpec):
        self.value = value

    def temperature(self, points: np.ndarray) -> np.ndarray:
        return _evaluate(self.value, points)

    def __repr__(self) -> str:
        label = "f(y)" if callable(self.value) else f"{self.value:g}K"
        return f"DirichletBC({label})"


class NeumannBC(BoundaryCondition):
    """Prescribed heat influx ``k dT/dn = influx`` (W/m^2 into the body).

    A 2-D power map is a Neumann BC whose influx callable interpolates the
    map over the face (paper Sec. III, "Surface/2D power").
    """

    kind = "neumann"

    def __init__(self, influx: ValueSpec):
        self.influx = influx

    def flux_into_body(self, points: np.ndarray) -> np.ndarray:
        return _evaluate(self.influx, points)

    def __repr__(self) -> str:
        label = "f(y)" if callable(self.influx) else f"{self.influx:g}W/m^2"
        return f"NeumannBC(influx={label})"


class AdiabaticBC(NeumannBC):
    """Perfectly insulated face: zero flux (paper's side surfaces)."""

    kind = "adiabatic"

    def __init__(self):
        super().__init__(0.0)

    def __repr__(self) -> str:
        return "AdiabaticBC()"


class ConvectionBC(BoundaryCondition):
    """Newton cooling ``-k dT/dn = h (T - T_amb)`` (paper eq. 5)."""

    kind = "convection"

    def __init__(self, htc: ValueSpec, t_ambient: float = 298.15):
        self.htc = htc
        self.t_ambient = float(t_ambient)
        if not callable(htc) and float(htc) < 0.0:
            raise ValueError("heat-transfer coefficient must be non-negative")

    def htc_values(self, points: np.ndarray) -> np.ndarray:
        return _evaluate(self.htc, points)

    def __repr__(self) -> str:
        label = "f(y)" if callable(self.htc) else f"{self.htc:g}"
        return f"ConvectionBC(h={label} W/m^2K, T_amb={self.t_ambient:g}K)"
