"""Boundary-condition vocabulary shared by the FDM solver and DeepOHeat."""

from .conditions import (
    AdiabaticBC,
    BoundaryCondition,
    ConvectionBC,
    DirichletBC,
    NeumannBC,
)

__all__ = [
    "AdiabaticBC",
    "BoundaryCondition",
    "ConvectionBC",
    "DirichletBC",
    "NeumannBC",
]
