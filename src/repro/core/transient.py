"""Transient-mode configuration: the time half of the hat system.

Steady DeepOHeat nondimensionalizes space onto the unit cube and
temperature onto ``(T - T_ref) / dT_ref``; transient mode adds a fourth
trunk coordinate ``t_hat = t / horizon`` over one simulated window.  The
governing equation (paper eq. 1)

    rho c_p dT/dt = div(k grad T) + q_V

multiplied by the same ``L_ref^2 / (k dT_ref)`` factor as the steady
residual becomes

    fo * dThat/dthat = sum_i (L_ref/L_i)^2 d2That/dyhat_i^2 + q_hat

with the dimensionless group ``fo = rho c_p L_ref^2 / (k * horizon)`` —
the reciprocal Fourier number of the window.  :class:`TransientSpec`
carries the two physical scalars (``rho_cp``, ``horizon``) plus the grid
the initial-condition labels are solved on, and owns the hat-time
round-trip so every consumer (sampler, losses, engine, reference
stepper) agrees on the same map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class TransientSpec:
    """Physical time scales of one transient training window.

    Parameters
    ----------
    rho_cp:
        Volumetric heat capacity ``rho * c_p`` in J/(m^3 K); uniform
        over the chip (layered capacity fields ride on the FDM side
        only, where :class:`~repro.fdm.transient.TransientSolver`
        accepts a callable).
    horizon:
        Simulated window length in seconds; hat time 1.0 maps to it.
    ic_grid_shape:
        Structured-grid shape the farm-backed initial-condition solves
        (and their trilinear interpolation onto collocation points) use.
    """

    rho_cp: float
    horizon: float
    ic_grid_shape: Tuple[int, int, int] = (9, 9, 6)

    def __post_init__(self):
        if self.rho_cp <= 0:
            raise ValueError("rho_cp must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if len(self.ic_grid_shape) != 3 or any(n < 2 for n in self.ic_grid_shape):
            raise ValueError("ic_grid_shape needs >= 2 nodes per axis")

    # -- hat time ------------------------------------------------------
    def time_to_hat(self, t_seconds: np.ndarray) -> np.ndarray:
        return np.asarray(t_seconds, dtype=np.float64) / self.horizon

    def time_to_si(self, t_hat: np.ndarray) -> np.ndarray:
        return np.asarray(t_hat, dtype=np.float64) * self.horizon

    # -- PDE scale factors ---------------------------------------------
    def fourier_coefficient(self, conductivity, l_ref: float):
        """``fo = rho c_p L_ref^2 / (k * horizon)``, elementwise in k.

        This is the factor multiplying ``dThat/dthat`` in the hat-space
        residual; broadcasting over nodal conductivity keeps the
        transient residual consistent with the steady one's pointwise
        ``k``.
        """
        k = np.asarray(conductivity, dtype=np.float64)
        return self.rho_cp * l_ref**2 / (k * self.horizon)

    def diffusion_time(self, conductivity: float, length: float) -> float:
        """The diffusion time ``rho c_p L^2 / k`` of one length scale.

        Useful for choosing ``horizon``: a window of a few diffusion
        times of the thickest layer captures the full step response.
        """
        return self.rho_cp * length**2 / float(conductivity)
