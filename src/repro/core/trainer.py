"""Self-supervised training loop (paper Sec. IV-B / V-A.4).

Per iteration: sample configurations from their function spaces, draw a
collocation batch, assemble the physics loss (eq. 11), and take one Adam
step under the paper's staircase LR schedule (1e-3, x0.9 every 500).
No simulation data is consumed anywhere — training is purely residual
driven, which is the paper's headline practicality claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .. import autodiff as ad
from ..nn import Adam, ExponentialDecay, clip_grad_norm
from .model import DeepOHeat
from .sampler import CollocationPlan


@dataclass
class TrainerConfig:
    """Hyper-parameters of one training run.

    ``balance_every`` enables adaptive loss balancing: every N iterations
    the per-component weights are adjusted toward the inverse of each
    component's (raw) magnitude, EMA-smoothed and clamped, so that no
    single residual — e.g. a stiff volumetric source — monopolises the
    gradient signal.  Off by default (the paper uses the plain eq.-11 sum).
    """

    iterations: int = 1000
    n_functions: int = 16  # configurations sampled per iteration (paper: 50)
    learning_rate: float = 1e-3
    decay_rate: float = 0.9
    decay_every: int = 500
    clip_norm: Optional[float] = None
    seed: int = 0
    log_every: int = 50
    balance_every: Optional[int] = None
    balance_momentum: float = 0.7
    balance_clip: float = 100.0
    # Fused stacked derivative-stream propagation (see repro.nn.taylor).
    # False falls back to the legacy per-axis tape chains — the reference
    # path the fused-kernel parity tests and benchmarks compare against.
    stacked: bool = True

    def schedule(self) -> ExponentialDecay:
        return ExponentialDecay(
            self.learning_rate, self.decay_rate, self.decay_every, staircase=True
        )


@dataclass
class TrainingHistory:
    """Loss trajectory and timing of a run."""

    iterations: List[int] = field(default_factory=list)
    total_loss: List[float] = field(default_factory=list)
    components: Dict[str, List[float]] = field(default_factory=dict)
    learning_rates: List[float] = field(default_factory=list)
    wall_time: float = 0.0

    def record(self, iteration: int, total: float, parts: Dict[str, float],
               lr: float) -> None:
        self.iterations.append(iteration)
        self.total_loss.append(total)
        self.learning_rates.append(lr)
        for name, value in parts.items():
            self.components.setdefault(name, []).append(value)

    @property
    def final_loss(self) -> float:
        return self.total_loss[-1] if self.total_loss else float("nan")

    @property
    def initial_loss(self) -> float:
        return self.total_loss[0] if self.total_loss else float("nan")

    def improvement_factor(self) -> float:
        """initial/final loss ratio (>1 means learning happened)."""
        if not self.total_loss or self.final_loss == 0.0:
            return float("inf")
        return self.initial_loss / self.final_loss


class Trainer:
    """Runs physics-informed training of a :class:`DeepOHeat` model."""

    def __init__(
        self,
        model: DeepOHeat,
        plan: CollocationPlan,
        config: Optional[TrainerConfig] = None,
    ):
        # Transient models train on space-time (4-column) collocation
        # batches and vice versa; a mismatch would only surface as a
        # shape error deep inside the stacked propagation, so fail fast
        # here with the actual fix spelled out.
        model_transient = model.transient is not None
        plan_transient = bool(getattr(plan, "time_dependent", False))
        if model_transient != plan_transient:
            raise ValueError(
                "transient mode mismatch: "
                + (
                    "the model has a TransientSpec but the collocation plan "
                    "is steady — use TransientCollocation"
                    if model_transient
                    else "the collocation plan is time-dependent but the "
                    "model is steady — pass transient=TransientSpec(...) "
                    "to DeepOHeat"
                )
            )
        self.model = model
        self.plan = plan
        self.config = config if config is not None else TrainerConfig()

    def run(
        self,
        callback: Optional[Callable[[int, float, Dict[str, float]], None]] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train and return the loss history.

        ``callback(iteration, total, components)`` fires every
        ``log_every`` iterations (and on the last one).
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        params = self.model.net.parameters()
        optimizer = Adam(params, lr=cfg.learning_rate)
        schedule = cfg.schedule()
        history = TrainingHistory()

        start = time.perf_counter()
        for iteration in range(cfg.iterations):
            raws = [
                config_input.sample(rng, cfg.n_functions)
                for config_input in self.model.inputs
            ]
            batch = self.plan.batch(rng, cfg.n_functions)
            total, parts = self.model.compute_loss(raws, batch, stacked=cfg.stacked)
            if cfg.balance_every and iteration % cfg.balance_every == 0:
                self._rebalance(parts)
            grads = ad.grad(total, params)
            grad_arrays = [g.data for g in grads]
            if cfg.clip_norm is not None:
                grad_arrays = clip_grad_norm(grad_arrays, cfg.clip_norm)
            optimizer.lr = schedule(iteration)
            optimizer.step(grad_arrays)

            is_log_step = (
                iteration % cfg.log_every == 0 or iteration == cfg.iterations - 1
            )
            if is_log_step:
                history.record(iteration, total.item(), parts, optimizer.lr)
                if callback is not None:
                    callback(iteration, total.item(), parts)
                if verbose:
                    part_text = " ".join(
                        f"{k}={v:.3e}" for k, v in sorted(parts.items())
                    )
                    print(f"[{iteration:5d}] loss={total.item():.4e} {part_text}")
        history.wall_time = time.perf_counter() - start
        return history

    def _rebalance(self, parts: Dict[str, float]) -> None:
        """Move loss weights toward inverse component magnitudes.

        Raw (unweighted) magnitudes are recovered by dividing each reported
        component by its current weight; new targets make every component
        contribute ~equally, smoothed by ``balance_momentum`` and clamped
        to ``[1/clip, clip]``.
        """
        cfg = self.config
        weights = self.model.builder.weights
        raw = {
            name: max(value / weights.get(name, 1.0), 1e-12)
            for name, value in parts.items()
        }
        mean_magnitude = float(np.mean(list(raw.values())))
        for name, magnitude in raw.items():
            target = mean_magnitude / magnitude
            target = float(np.clip(target, 1.0 / cfg.balance_clip, cfg.balance_clip))
            current = weights.get(name, 1.0)
            weights[name] = (
                cfg.balance_momentum * current
                + (1.0 - cfg.balance_momentum) * target
            )
