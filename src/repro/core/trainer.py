"""Self-supervised training loop (paper Sec. IV-B / V-A.4).

Per iteration: sample configurations from their function spaces, draw a
collocation batch, assemble the physics loss (eq. 11), and take one Adam
step under the paper's staircase LR schedule (1e-3, x0.9 every 500).
No simulation data is consumed anywhere — training is purely residual
driven, which is the paper's headline practicality claim.
"""

from __future__ import annotations

import logging
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from .. import autodiff as ad
from .. import faults
from ..backend import row_chunks
from ..nn import Adam, ExponentialDecay, clip_grad_norm
from ..nn.serialize import CheckpointCorrupt, read_payload, write_payload
from ..parallel import PersistentPool, WorkerCrashed, resolve_workers, spawn_seeds
from ..parallel.trainwork import seed_worker, train_shard_step, train_worker_init
from .model import DeepOHeat
from .sampler import CollocationBatch, CollocationPlan

logger = logging.getLogger("repro.core.trainer")

#: schema tag of trainer-state checkpoints (autosave/resume files).
STATE_SCHEMA = "repro-trainer-state-v1"

#: config fields that determine the numerical trajectory — a resume with
#: any of these changed would silently compute a *different* run, so
#: they are recorded at save time and enforced at load time.  (Worker
#: count is deliberately absent: it only changes float summation order.)
_RESUME_FIELDS = (
    "seed",
    "n_functions",
    "learning_rate",
    "decay_rate",
    "decay_every",
    "clip_norm",
    "balance_every",
    "balance_momentum",
    "balance_clip",
    "stacked",
)


@dataclass
class TrainerConfig:
    """Hyper-parameters of one training run.

    ``balance_every`` enables adaptive loss balancing: every N iterations
    the per-component weights are adjusted toward the inverse of each
    component's (raw) magnitude, EMA-smoothed and clamped, so that no
    single residual — e.g. a stiff volumetric source — monopolises the
    gradient signal.  Off by default (the paper uses the plain eq.-11 sum).

    ``workers`` enables data-parallel training: the sampled configurations
    shard across worker-process model replicas, whose losses and gradients
    recombine as the exact function-axis decomposition of the serial loss
    (resolved via :func:`~repro.parallel.resolve_workers`; ``None`` defers
    to ``REPRO_WORKERS``, 1 is the untouched serial loop).
    """

    iterations: int = 1000
    n_functions: int = 16  # configurations sampled per iteration (paper: 50)
    learning_rate: float = 1e-3
    decay_rate: float = 0.9
    decay_every: int = 500
    clip_norm: Optional[float] = None
    seed: int = 0
    log_every: int = 50
    balance_every: Optional[int] = None
    balance_momentum: float = 0.7
    balance_clip: float = 100.0
    # Fused stacked derivative-stream propagation (see repro.nn.taylor).
    # False falls back to the legacy per-axis tape chains — the reference
    # path the fused-kernel parity tests and benchmarks compare against.
    stacked: bool = True
    workers: Optional[int] = None
    # Autosave full trainer state (weights, Adam moments, RNG, iteration)
    # every N completed iterations when a checkpoint_path is passed to
    # :meth:`Trainer.run`.  None/0 disables autosave.
    checkpoint_every: Optional[int] = None
    # Self-healing bound for the data-parallel pool: at most
    # restart_budget worker respawns per sliding restart_window seconds
    # before the run finishes serially.
    restart_budget: int = 3
    restart_window: float = 60.0

    def schedule(self) -> ExponentialDecay:
        return ExponentialDecay(
            self.learning_rate, self.decay_rate, self.decay_every, staircase=True
        )


@dataclass
class TrainingHistory:
    """Loss trajectory and timing of a run."""

    iterations: List[int] = field(default_factory=list)
    total_loss: List[float] = field(default_factory=list)
    components: Dict[str, List[float]] = field(default_factory=dict)
    learning_rates: List[float] = field(default_factory=list)
    wall_time: float = 0.0

    def record(self, iteration: int, total: float, parts: Dict[str, float],
               lr: float) -> None:
        self.iterations.append(iteration)
        self.total_loss.append(total)
        self.learning_rates.append(lr)
        for name, value in parts.items():
            self.components.setdefault(name, []).append(value)

    @property
    def final_loss(self) -> float:
        return self.total_loss[-1] if self.total_loss else float("nan")

    @property
    def initial_loss(self) -> float:
        return self.total_loss[0] if self.total_loss else float("nan")

    def improvement_factor(self) -> float:
        """initial/final loss ratio (>1 means learning happened)."""
        if not self.total_loss or self.final_loss == 0.0:
            return float("inf")
        return self.initial_loss / self.final_loss


def save_trainer_state(
    path: Union[str, Path],
    *,
    iteration: int,
    params: List,
    optimizer: Adam,
    rng: np.random.Generator,
    history: TrainingHistory,
    weights: Dict[str, float],
    config: TrainerConfig,
) -> Path:
    """Atomically snapshot *everything* a training run needs to continue.

    ``iteration`` is the next iteration to run (the snapshot is taken
    after a completed step).  The arrays (parameters + Adam first/second
    moments) carry a payload sha256; the metadata records the optimizer
    step count, the RNG bit-generator state (JSON-serializable for
    PCG64 — arbitrary-precision ints round-trip exactly), the recorded
    history so far, the adaptive loss weights, and the
    trajectory-determining config fields (enforced on resume).  Resuming
    from this snapshot is bitwise identical to never having stopped.
    """
    arrays: Dict[str, np.ndarray] = {}
    for index, (param, m, v) in enumerate(zip(params, optimizer._m, optimizer._v)):
        arrays[f"param_{index:03d}"] = param.data
        arrays[f"adam_m_{index:03d}"] = m
        arrays[f"adam_v_{index:03d}"] = v
    meta = {
        "schema": STATE_SCHEMA,
        "iteration": int(iteration),
        "step_count": int(optimizer.step_count),
        "rng_state": rng.bit_generator.state,
        "history": {
            "iterations": list(history.iterations),
            "total_loss": list(history.total_loss),
            "components": {k: list(v) for k, v in history.components.items()},
            "learning_rates": list(history.learning_rates),
            "wall_time": float(history.wall_time),
        },
        "weights": {k: float(v) for k, v in (weights or {}).items()},
        "config": {name: getattr(config, name) for name in _RESUME_FIELDS},
    }
    return write_payload(path, arrays, meta)


def load_trainer_state(path: Union[str, Path]) -> Tuple[Dict[str, np.ndarray], Dict]:
    """Load and verify a :func:`save_trainer_state` snapshot.

    Returns ``(arrays, meta)``.  Raises :class:`CheckpointCorrupt` on a
    torn/tampered file or wrong schema, ``FileNotFoundError`` when the
    snapshot simply does not exist.
    """
    arrays, meta = read_payload(path)
    if meta.get("schema") != STATE_SCHEMA:
        raise CheckpointCorrupt(
            path, f"unexpected trainer-state schema {meta.get('schema')!r}"
        )
    return arrays, meta


class Trainer:
    """Runs physics-informed training of a :class:`DeepOHeat` model."""

    def __init__(
        self,
        model: DeepOHeat,
        plan: CollocationPlan,
        config: Optional[TrainerConfig] = None,
    ):
        # Transient models train on space-time (4-column) collocation
        # batches and vice versa; a mismatch would only surface as a
        # shape error deep inside the stacked propagation, so fail fast
        # here with the actual fix spelled out.
        model_transient = model.transient is not None
        plan_transient = bool(getattr(plan, "time_dependent", False))
        if model_transient != plan_transient:
            raise ValueError(
                "transient mode mismatch: "
                + (
                    "the model has a TransientSpec but the collocation plan "
                    "is steady — use TransientCollocation"
                    if model_transient
                    else "the collocation plan is time-dependent but the "
                    "model is steady — pass transient=TransientSpec(...) "
                    "to DeepOHeat"
                )
            )
        self.model = model
        self.plan = plan
        self.config = config if config is not None else TrainerConfig()

    def run(
        self,
        callback: Optional[Callable[[int, float, Dict[str, float]], None]] = None,
        verbose: bool = False,
        checkpoint_path: Optional[Union[str, Path]] = None,
        resume: bool = False,
    ) -> TrainingHistory:
        """Train and return the loss history.

        ``callback(iteration, total, components)`` fires every
        ``log_every`` iterations (and on the last one).

        ``checkpoint_path`` + ``config.checkpoint_every`` turn on
        autosave: the full trainer state (parameters, Adam moments, RNG
        state, iteration, history, loss weights) is written crash-safely
        every N completed iterations.  ``resume=True`` restores that
        snapshot if it exists (a missing file starts fresh) and
        continues with a bitwise-identical trajectory versus an
        uninterrupted run; a corrupt snapshot raises
        :class:`~repro.nn.CheckpointCorrupt`.

        With ``config.workers`` resolving above 1 the run is
        data-parallel (see :meth:`_run_sharded`); any failure to bring
        the worker pool up falls back to the serial loop with a warning
        rather than aborting the run.
        """
        cfg = self.config
        resumed = None
        if resume:
            if checkpoint_path is None:
                raise ValueError("resume=True requires a checkpoint_path")
            candidate = Path(checkpoint_path)
            if not candidate.exists() and candidate.with_suffix(
                candidate.suffix + ".npz"
            ).exists():
                candidate = candidate.with_suffix(candidate.suffix + ".npz")
            if candidate.exists():
                resumed = load_trainer_state(candidate)
                self._check_resume_config(resumed[1])
        workers = min(resolve_workers(cfg.workers), cfg.n_functions)
        if workers > 1:
            pool = None
            try:
                pool = PersistentPool(
                    workers,
                    initializer=train_worker_init,
                    init_args=(pickle.dumps(self.model),),
                    auto_heal=False,  # shard replays need manual reseeding
                    restart_budget=cfg.restart_budget,
                    restart_window=cfg.restart_window,
                )
                for index, seed in enumerate(spawn_seeds(cfg.seed, workers)):
                    pool.run_on(index, seed_worker, seed)
            except WorkerCrashed as exc:
                logger.warning(
                    "training pool failed to start (%s); running serially", exc
                )
                if pool is not None:
                    pool.close()
                pool = None
            if pool is not None:
                return self._run_sharded(
                    pool, workers, callback, verbose, checkpoint_path, resumed
                )
        return self._run_serial(callback, verbose, checkpoint_path, resumed)

    # ------------------------------------------------------------------
    # Checkpoint/resume plumbing shared by both loops
    # ------------------------------------------------------------------
    def _check_resume_config(self, meta: Dict) -> None:
        """Refuse to resume under config that would change the math."""
        saved = meta.get("config", {})
        mismatched = {
            name: (saved.get(name), getattr(self.config, name))
            for name in _RESUME_FIELDS
            if name in saved and saved[name] != getattr(self.config, name)
        }
        if mismatched:
            detail = ", ".join(
                f"{name}: saved {old!r} != current {new!r}"
                for name, (old, new) in sorted(mismatched.items())
            )
            raise ValueError(
                f"cannot resume: trajectory-determining config changed ({detail})"
            )

    def _prepare_run(
        self, resumed: Optional[Tuple[Dict[str, np.ndarray], Dict]]
    ) -> Tuple[np.random.Generator, List, Adam, TrainingHistory, int]:
        """Fresh or restored (rng, params, optimizer, history, start)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        params = self.model.net.parameters()
        optimizer = Adam(params, lr=cfg.learning_rate)
        history = TrainingHistory()
        start_iteration = 0
        if resumed is not None:
            arrays, meta = resumed
            expected = 3 * len(params)
            if len(arrays) != expected:
                raise CheckpointCorrupt(
                    "<trainer state>",
                    f"snapshot carries {len(arrays)} arrays but this model "
                    f"needs {expected} — wrong model for this checkpoint?",
                )
            for index, param in enumerate(params):
                param.data[...] = arrays[f"param_{index:03d}"]
                optimizer._m[index][...] = arrays[f"adam_m_{index:03d}"]
                optimizer._v[index][...] = arrays[f"adam_v_{index:03d}"]
            optimizer.step_count = int(meta["step_count"])
            rng.bit_generator.state = meta["rng_state"]
            recorded = meta.get("history", {})
            history.iterations = list(recorded.get("iterations", []))
            history.total_loss = list(recorded.get("total_loss", []))
            history.components = {
                k: list(v) for k, v in recorded.get("components", {}).items()
            }
            history.learning_rates = list(recorded.get("learning_rates", []))
            history.wall_time = float(recorded.get("wall_time", 0.0))
            weights = meta.get("weights") or {}
            if weights:
                self.model.builder.weights.clear()
                self.model.builder.weights.update(weights)
            start_iteration = int(meta["iteration"])
            logger.info(
                "resuming training at iteration %d (of %d)",
                start_iteration,
                cfg.iterations,
            )
        return rng, params, optimizer, history, start_iteration

    def _maybe_checkpoint(
        self,
        checkpoint_path: Optional[Union[str, Path]],
        iteration: int,
        params: List,
        optimizer: Adam,
        rng: np.random.Generator,
        history: TrainingHistory,
        prior_wall: float,
        started: float,
    ) -> None:
        """Autosave after iteration ``iteration`` when the cadence says so."""
        cfg = self.config
        if checkpoint_path is None or not cfg.checkpoint_every:
            return
        done = iteration + 1
        if done % cfg.checkpoint_every != 0 or done >= cfg.iterations:
            return
        history.wall_time = prior_wall + time.perf_counter() - started
        save_trainer_state(
            checkpoint_path,
            iteration=done,
            params=params,
            optimizer=optimizer,
            rng=rng,
            history=history,
            weights=self.model.builder.weights,
            config=cfg,
        )

    def _run_serial(
        self,
        callback: Optional[Callable[[int, float, Dict[str, float]], None]] = None,
        verbose: bool = False,
        checkpoint_path: Optional[Union[str, Path]] = None,
        resumed: Optional[Tuple[Dict[str, np.ndarray], Dict]] = None,
    ) -> TrainingHistory:
        """The historical single-process loop (the workers<=1 path)."""
        cfg = self.config
        rng, params, optimizer, history, start_iteration = self._prepare_run(resumed)
        schedule = cfg.schedule()
        prior_wall = history.wall_time

        start = time.perf_counter()
        for iteration in range(start_iteration, cfg.iterations):
            faults.hit("trainer.iteration", iteration=iteration)
            raws = [
                config_input.sample(rng, cfg.n_functions)
                for config_input in self.model.inputs
            ]
            batch = self.plan.batch(rng, cfg.n_functions)
            total, parts = self.model.compute_loss(raws, batch, stacked=cfg.stacked)
            if cfg.balance_every and iteration % cfg.balance_every == 0:
                self._rebalance(parts)
            grads = ad.grad(total, params)
            grad_arrays = [g.data for g in grads]
            if cfg.clip_norm is not None:
                grad_arrays = clip_grad_norm(grad_arrays, cfg.clip_norm)
            optimizer.lr = schedule(iteration)
            optimizer.step(grad_arrays)

            is_log_step = (
                iteration % cfg.log_every == 0 or iteration == cfg.iterations - 1
            )
            if is_log_step:
                history.record(iteration, total.item(), parts, optimizer.lr)
                if callback is not None:
                    callback(iteration, total.item(), parts)
                if verbose:
                    part_text = " ".join(
                        f"{k}={v:.3e}" for k, v in sorted(parts.items())
                    )
                    print(f"[{iteration:5d}] loss={total.item():.4e} {part_text}")
            self._maybe_checkpoint(
                checkpoint_path,
                iteration,
                params,
                optimizer,
                rng,
                history,
                prior_wall,
                start,
            )
        history.wall_time = prior_wall + time.perf_counter() - start
        return history

    def _heal_pool(
        self, pool: PersistentPool, workers: int, exc: WorkerCrashed
    ) -> Optional[PersistentPool]:
        """Respawn dead replicas and reseed them, or give up to serial.

        Pending tickets are forgotten first (their late answers are
        discarded), because the whole iteration is re-dispatched — the
        pool-level automatic ticket replay cannot be used here, as a
        replayed shard may carry ``send=None`` against a replica that
        lost its batch.  Returns the healed pool, or ``None`` when the
        restart budget is exhausted (pool closed, caller goes serial).
        """
        cfg = self.config
        try:
            pool.forget_pending()
            healed = []
            # Respawn the known-crashed replica by index first: right
            # after a crash ``Process.is_alive()`` may not have reaped
            # the corpse yet, so ``heal_workers`` alone can miss it and
            # spin (without ever consuming the restart budget).
            if exc.worker is not None:
                pool.respawn_worker(exc.worker, cause=str(exc))
                healed.append(exc.worker)
            healed += [w for w in pool.heal_workers() if w not in healed]
            seeds = spawn_seeds(cfg.seed, workers)
            for index in healed:
                pool.run_on(index, seed_worker, seeds[index])
        except WorkerCrashed as give_up:
            logger.warning(
                "training pool is beyond healing (%s); finishing the run "
                "serially",
                give_up,
            )
            pool.close()
            return None
        logger.warning(
            "training pool worker crashed (%s); respawned replicas %s and "
            "retrying the iteration sharded",
            exc,
            healed,
        )
        return pool

    def _run_sharded(
        self,
        pool: PersistentPool,
        workers: int,
        callback: Optional[Callable[[int, float, Dict[str, float]], None]],
        verbose: bool,
        checkpoint_path: Optional[Union[str, Path]] = None,
        resumed: Optional[Tuple[Dict[str, np.ndarray], Dict]] = None,
    ) -> TrainingHistory:
        """Data-parallel run: configuration shards on worker replicas.

        Sampling stays in the parent and consumes the RNG stream exactly
        as the serial loop does, so the drawn configurations and
        collocation batches are identical for any worker count.  Each
        iteration broadcasts the current parameters, evaluates shard
        losses/gradients on the replicas, and recombines them weighted by
        each shard's share of the function batch, in fixed shard order —
        the exact function-axis decomposition of the serial loss, so
        results differ from serial only by float summation order.  The
        optimizer step, clipping, schedule and history live in the
        parent, untouched.

        A worker crash heals in place: dead replicas are respawned and
        reseeded, stale tickets forgotten, and the *same iteration* is
        re-dispatched sharded (re-shipping the batch), so the reduction
        order — and therefore the trajectory — is unchanged.  Only when
        the restart budget is exhausted does the rest of the run demote
        to the serial step (with a logged warning); completed iterations
        are kept either way.
        """
        cfg = self.config
        rng, params, optimizer, history, start_iteration = self._prepare_run(resumed)
        schedule = cfg.schedule()
        prior_wall = history.wall_time
        bounds = row_chunks(cfg.n_functions, workers)
        shares = [(hi - lo) / cfg.n_functions for lo, hi in bounds]
        last_batch = None
        token = 0

        start = time.perf_counter()
        try:
            for iteration in range(start_iteration, cfg.iterations):
                faults.hit("trainer.iteration", iteration=iteration)
                raws = [
                    config_input.sample(rng, cfg.n_functions)
                    for config_input in self.model.inputs
                ]
                batch = self.plan.batch(rng, cfg.n_functions)
                total: Optional[float] = None
                while pool is not None and total is None:
                    # Shared-point batches cross the pipe once (fixed-mesh
                    # plans reuse one object, keeping the replicas' geometry
                    # caches hot); aligned batches carry per-function points
                    # and are sliced to each shard every iteration.
                    ship = batch.aligned or batch is not last_batch
                    if ship:
                        token += 1
                        last_batch = batch
                    param_arrays = [param.data for param in params]
                    weights = (
                        dict(self.model.builder.weights)
                        if cfg.balance_every
                        else None
                    )
                    try:
                        tickets = []
                        for worker, (lo, hi) in enumerate(bounds):
                            if not ship:
                                send = None
                            elif batch.aligned:
                                send = self._slice_batch(batch, lo, hi)
                            else:
                                send = batch
                            tickets.append(
                                pool.submit(
                                    worker,
                                    train_shard_step,
                                    param_arrays,
                                    [raw[lo:hi] for raw in raws],
                                    send,
                                    token,
                                    weights,
                                    cfg.stacked,
                                )
                            )
                        total = 0.0
                        parts: Dict[str, float] = {}
                        grad_arrays: Optional[List[np.ndarray]] = None
                        for share, ticket in zip(shares, tickets):
                            shard_total, shard_parts, shard_grads = pool.result(
                                ticket
                            )
                            total += share * shard_total
                            for name, value in shard_parts.items():
                                parts[name] = parts.get(name, 0.0) + share * value
                            # Rebuild rather than `acc += ...`: scalar
                            # parameters (the MIONet bias) carry 0-d grads,
                            # for which in-place += silently rebinds.
                            if grad_arrays is None:
                                grad_arrays = [share * g for g in shard_grads]
                            else:
                                grad_arrays = [
                                    acc + share * g
                                    for acc, g in zip(grad_arrays, shard_grads)
                                ]
                    except WorkerCrashed as exc:
                        total = None
                        pool = self._heal_pool(pool, workers, exc)
                        # Respawned replicas lost their resident batch:
                        # force a re-ship on the retry (and for the rest
                        # of the run, survivors just overwrite theirs).
                        last_batch = None
                if total is None:
                    loss, parts = self.model.compute_loss(
                        raws, batch, stacked=cfg.stacked
                    )
                    grads = ad.grad(loss, params)
                    grad_arrays = [g.data for g in grads]
                    total = loss.item()
                if cfg.balance_every and iteration % cfg.balance_every == 0:
                    self._rebalance(parts)
                if cfg.clip_norm is not None:
                    grad_arrays = clip_grad_norm(grad_arrays, cfg.clip_norm)
                optimizer.lr = schedule(iteration)
                optimizer.step(grad_arrays)

                is_log_step = (
                    iteration % cfg.log_every == 0
                    or iteration == cfg.iterations - 1
                )
                if is_log_step:
                    history.record(iteration, total, parts, optimizer.lr)
                    if callback is not None:
                        callback(iteration, total, parts)
                    if verbose:
                        part_text = " ".join(
                            f"{k}={v:.3e}" for k, v in sorted(parts.items())
                        )
                        print(f"[{iteration:5d}] loss={total:.4e} {part_text}")
                self._maybe_checkpoint(
                    checkpoint_path,
                    iteration,
                    params,
                    optimizer,
                    rng,
                    history,
                    prior_wall,
                    start,
                )
        finally:
            if pool is not None:
                pool.close()
        history.wall_time = prior_wall + time.perf_counter() - start
        return history

    @staticmethod
    def _slice_batch(batch: CollocationBatch, lo: int, hi: int) -> CollocationBatch:
        """An aligned batch's rows for one function shard."""
        return CollocationBatch(
            hat={region: points[lo:hi] for region, points in batch.hat.items()},
            si={region: points[lo:hi] for region, points in batch.si.items()},
            aligned=True,
            dedup_base=batch.dedup_base,
            dedup_indices=batch.dedup_indices,
        )

    def _rebalance(self, parts: Dict[str, float]) -> None:
        """Move loss weights toward inverse component magnitudes.

        Raw (unweighted) magnitudes are recovered by dividing each reported
        component by its current weight; new targets make every component
        contribute ~equally, smoothed by ``balance_momentum`` and clamped
        to ``[1/clip, clip]``.
        """
        cfg = self.config
        weights = self.model.builder.weights
        raw = {
            name: max(value / weights.get(name, 1.0), 1e-12)
            for name, value in parts.items()
        }
        mean_magnitude = float(np.mean(list(raw.values())))
        for name, magnitude in raw.items():
            target = mean_magnitude / magnitude
            target = float(np.clip(target, 1.0 / cfg.balance_clip, cfg.balance_clip))
            current = weights.get(name, 1.0)
            weights[name] = (
                cfg.balance_momentum * current
                + (1.0 - cfg.balance_momentum) * target
            )
