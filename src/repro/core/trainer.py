"""Self-supervised training loop (paper Sec. IV-B / V-A.4).

Per iteration: sample configurations from their function spaces, draw a
collocation batch, assemble the physics loss (eq. 11), and take one Adam
step under the paper's staircase LR schedule (1e-3, x0.9 every 500).
No simulation data is consumed anywhere — training is purely residual
driven, which is the paper's headline practicality claim.
"""

from __future__ import annotations

import logging
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .. import autodiff as ad
from ..backend import row_chunks
from ..nn import Adam, ExponentialDecay, clip_grad_norm
from ..parallel import PersistentPool, WorkerCrashed, resolve_workers, spawn_seeds
from ..parallel.trainwork import seed_worker, train_shard_step, train_worker_init
from .model import DeepOHeat
from .sampler import CollocationBatch, CollocationPlan

logger = logging.getLogger("repro.core.trainer")


@dataclass
class TrainerConfig:
    """Hyper-parameters of one training run.

    ``balance_every`` enables adaptive loss balancing: every N iterations
    the per-component weights are adjusted toward the inverse of each
    component's (raw) magnitude, EMA-smoothed and clamped, so that no
    single residual — e.g. a stiff volumetric source — monopolises the
    gradient signal.  Off by default (the paper uses the plain eq.-11 sum).

    ``workers`` enables data-parallel training: the sampled configurations
    shard across worker-process model replicas, whose losses and gradients
    recombine as the exact function-axis decomposition of the serial loss
    (resolved via :func:`~repro.parallel.resolve_workers`; ``None`` defers
    to ``REPRO_WORKERS``, 1 is the untouched serial loop).
    """

    iterations: int = 1000
    n_functions: int = 16  # configurations sampled per iteration (paper: 50)
    learning_rate: float = 1e-3
    decay_rate: float = 0.9
    decay_every: int = 500
    clip_norm: Optional[float] = None
    seed: int = 0
    log_every: int = 50
    balance_every: Optional[int] = None
    balance_momentum: float = 0.7
    balance_clip: float = 100.0
    # Fused stacked derivative-stream propagation (see repro.nn.taylor).
    # False falls back to the legacy per-axis tape chains — the reference
    # path the fused-kernel parity tests and benchmarks compare against.
    stacked: bool = True
    workers: Optional[int] = None

    def schedule(self) -> ExponentialDecay:
        return ExponentialDecay(
            self.learning_rate, self.decay_rate, self.decay_every, staircase=True
        )


@dataclass
class TrainingHistory:
    """Loss trajectory and timing of a run."""

    iterations: List[int] = field(default_factory=list)
    total_loss: List[float] = field(default_factory=list)
    components: Dict[str, List[float]] = field(default_factory=dict)
    learning_rates: List[float] = field(default_factory=list)
    wall_time: float = 0.0

    def record(self, iteration: int, total: float, parts: Dict[str, float],
               lr: float) -> None:
        self.iterations.append(iteration)
        self.total_loss.append(total)
        self.learning_rates.append(lr)
        for name, value in parts.items():
            self.components.setdefault(name, []).append(value)

    @property
    def final_loss(self) -> float:
        return self.total_loss[-1] if self.total_loss else float("nan")

    @property
    def initial_loss(self) -> float:
        return self.total_loss[0] if self.total_loss else float("nan")

    def improvement_factor(self) -> float:
        """initial/final loss ratio (>1 means learning happened)."""
        if not self.total_loss or self.final_loss == 0.0:
            return float("inf")
        return self.initial_loss / self.final_loss


class Trainer:
    """Runs physics-informed training of a :class:`DeepOHeat` model."""

    def __init__(
        self,
        model: DeepOHeat,
        plan: CollocationPlan,
        config: Optional[TrainerConfig] = None,
    ):
        # Transient models train on space-time (4-column) collocation
        # batches and vice versa; a mismatch would only surface as a
        # shape error deep inside the stacked propagation, so fail fast
        # here with the actual fix spelled out.
        model_transient = model.transient is not None
        plan_transient = bool(getattr(plan, "time_dependent", False))
        if model_transient != plan_transient:
            raise ValueError(
                "transient mode mismatch: "
                + (
                    "the model has a TransientSpec but the collocation plan "
                    "is steady — use TransientCollocation"
                    if model_transient
                    else "the collocation plan is time-dependent but the "
                    "model is steady — pass transient=TransientSpec(...) "
                    "to DeepOHeat"
                )
            )
        self.model = model
        self.plan = plan
        self.config = config if config is not None else TrainerConfig()

    def run(
        self,
        callback: Optional[Callable[[int, float, Dict[str, float]], None]] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train and return the loss history.

        ``callback(iteration, total, components)`` fires every
        ``log_every`` iterations (and on the last one).

        With ``config.workers`` resolving above 1 the run is
        data-parallel (see :meth:`_run_sharded`); any failure to bring
        the worker pool up falls back to the serial loop with a warning
        rather than aborting the run.
        """
        cfg = self.config
        workers = min(resolve_workers(cfg.workers), cfg.n_functions)
        if workers > 1:
            pool = None
            try:
                pool = PersistentPool(
                    workers,
                    initializer=train_worker_init,
                    init_args=(pickle.dumps(self.model),),
                )
                for index, seed in enumerate(spawn_seeds(cfg.seed, workers)):
                    pool.run_on(index, seed_worker, seed)
            except WorkerCrashed as exc:
                logger.warning(
                    "training pool failed to start (%s); running serially", exc
                )
                if pool is not None:
                    pool.close()
                pool = None
            if pool is not None:
                return self._run_sharded(pool, workers, callback, verbose)
        return self._run_serial(callback, verbose)

    def _run_serial(
        self,
        callback: Optional[Callable[[int, float, Dict[str, float]], None]] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """The historical single-process loop (the workers<=1 path)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        params = self.model.net.parameters()
        optimizer = Adam(params, lr=cfg.learning_rate)
        schedule = cfg.schedule()
        history = TrainingHistory()

        start = time.perf_counter()
        for iteration in range(cfg.iterations):
            raws = [
                config_input.sample(rng, cfg.n_functions)
                for config_input in self.model.inputs
            ]
            batch = self.plan.batch(rng, cfg.n_functions)
            total, parts = self.model.compute_loss(raws, batch, stacked=cfg.stacked)
            if cfg.balance_every and iteration % cfg.balance_every == 0:
                self._rebalance(parts)
            grads = ad.grad(total, params)
            grad_arrays = [g.data for g in grads]
            if cfg.clip_norm is not None:
                grad_arrays = clip_grad_norm(grad_arrays, cfg.clip_norm)
            optimizer.lr = schedule(iteration)
            optimizer.step(grad_arrays)

            is_log_step = (
                iteration % cfg.log_every == 0 or iteration == cfg.iterations - 1
            )
            if is_log_step:
                history.record(iteration, total.item(), parts, optimizer.lr)
                if callback is not None:
                    callback(iteration, total.item(), parts)
                if verbose:
                    part_text = " ".join(
                        f"{k}={v:.3e}" for k, v in sorted(parts.items())
                    )
                    print(f"[{iteration:5d}] loss={total.item():.4e} {part_text}")
        history.wall_time = time.perf_counter() - start
        return history

    def _run_sharded(
        self,
        pool: PersistentPool,
        workers: int,
        callback: Optional[Callable[[int, float, Dict[str, float]], None]],
        verbose: bool,
    ) -> TrainingHistory:
        """Data-parallel run: configuration shards on worker replicas.

        Sampling stays in the parent and consumes the RNG stream exactly
        as the serial loop does, so the drawn configurations and
        collocation batches are identical for any worker count.  Each
        iteration broadcasts the current parameters, evaluates shard
        losses/gradients on the replicas, and recombines them weighted by
        each shard's share of the function batch, in fixed shard order —
        the exact function-axis decomposition of the serial loss, so
        results differ from serial only by float summation order.  The
        optimizer step, clipping, schedule and history live in the
        parent, untouched.  A worker crash demotes the rest of the run to
        the serial step (with a logged warning); completed iterations are
        kept.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        params = self.model.net.parameters()
        optimizer = Adam(params, lr=cfg.learning_rate)
        schedule = cfg.schedule()
        history = TrainingHistory()
        bounds = row_chunks(cfg.n_functions, workers)
        shares = [(hi - lo) / cfg.n_functions for lo, hi in bounds]
        last_batch = None
        token = 0

        start = time.perf_counter()
        try:
            for iteration in range(cfg.iterations):
                raws = [
                    config_input.sample(rng, cfg.n_functions)
                    for config_input in self.model.inputs
                ]
                batch = self.plan.batch(rng, cfg.n_functions)
                total: Optional[float] = None
                if pool is not None:
                    # Shared-point batches cross the pipe once (fixed-mesh
                    # plans reuse one object, keeping the replicas' geometry
                    # caches hot); aligned batches carry per-function points
                    # and are sliced to each shard every iteration.
                    ship = batch.aligned or batch is not last_batch
                    if ship:
                        token += 1
                        last_batch = batch
                    param_arrays = [param.data for param in params]
                    weights = (
                        dict(self.model.builder.weights)
                        if cfg.balance_every
                        else None
                    )
                    try:
                        tickets = []
                        for worker, (lo, hi) in enumerate(bounds):
                            if not ship:
                                send = None
                            elif batch.aligned:
                                send = self._slice_batch(batch, lo, hi)
                            else:
                                send = batch
                            tickets.append(
                                pool.submit(
                                    worker,
                                    train_shard_step,
                                    param_arrays,
                                    [raw[lo:hi] for raw in raws],
                                    send,
                                    token,
                                    weights,
                                    cfg.stacked,
                                )
                            )
                        total = 0.0
                        parts: Dict[str, float] = {}
                        grad_arrays: Optional[List[np.ndarray]] = None
                        for share, ticket in zip(shares, tickets):
                            shard_total, shard_parts, shard_grads = pool.result(
                                ticket
                            )
                            total += share * shard_total
                            for name, value in shard_parts.items():
                                parts[name] = parts.get(name, 0.0) + share * value
                            # Rebuild rather than `acc += ...`: scalar
                            # parameters (the MIONet bias) carry 0-d grads,
                            # for which in-place += silently rebinds.
                            if grad_arrays is None:
                                grad_arrays = [share * g for g in shard_grads]
                            else:
                                grad_arrays = [
                                    acc + share * g
                                    for acc, g in zip(grad_arrays, shard_grads)
                                ]
                    except WorkerCrashed as exc:
                        logger.warning(
                            "training pool worker crashed (%s); finishing the "
                            "run serially",
                            exc,
                        )
                        pool.close()
                        pool = None
                        total = None
                if total is None:
                    loss, parts = self.model.compute_loss(
                        raws, batch, stacked=cfg.stacked
                    )
                    grads = ad.grad(loss, params)
                    grad_arrays = [g.data for g in grads]
                    total = loss.item()
                if cfg.balance_every and iteration % cfg.balance_every == 0:
                    self._rebalance(parts)
                if cfg.clip_norm is not None:
                    grad_arrays = clip_grad_norm(grad_arrays, cfg.clip_norm)
                optimizer.lr = schedule(iteration)
                optimizer.step(grad_arrays)

                is_log_step = (
                    iteration % cfg.log_every == 0
                    or iteration == cfg.iterations - 1
                )
                if is_log_step:
                    history.record(iteration, total, parts, optimizer.lr)
                    if callback is not None:
                        callback(iteration, total, parts)
                    if verbose:
                        part_text = " ".join(
                            f"{k}={v:.3e}" for k, v in sorted(parts.items())
                        )
                        print(f"[{iteration:5d}] loss={total:.4e} {part_text}")
        finally:
            if pool is not None:
                pool.close()
        history.wall_time = time.perf_counter() - start
        return history

    @staticmethod
    def _slice_batch(batch: CollocationBatch, lo: int, hi: int) -> CollocationBatch:
        """An aligned batch's rows for one function shard."""
        return CollocationBatch(
            hat={region: points[lo:hi] for region, points in batch.hat.items()},
            si={region: points[lo:hi] for region, points in batch.si.items()},
            aligned=True,
            dedup_base=batch.dedup_base,
            dedup_indices=batch.dedup_indices,
        )

    def _rebalance(self, parts: Dict[str, float]) -> None:
        """Move loss weights toward inverse component magnitudes.

        Raw (unweighted) magnitudes are recovered by dividing each reported
        component by its current weight; new targets make every component
        contribute ~equally, smoothed by ``balance_momentum`` and clamped
        to ``[1/clip, clip]``.
        """
        cfg = self.config
        weights = self.model.builder.weights
        raw = {
            name: max(value / weights.get(name, 1.0), 1e-12)
            for name, value in parts.items()
        }
        mean_magnitude = float(np.mean(list(raw.values())))
        for name, magnitude in raw.items():
            target = mean_magnitude / magnitude
            target = float(np.clip(target, 1.0 / cfg.balance_clip, cfg.balance_clip))
            current = weights.get(name, 1.0)
            weights[name] = (
                cfg.balance_momentum * current
                + (1.0 - cfg.balance_momentum) * target
            )
