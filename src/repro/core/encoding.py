"""Design-configuration inputs: the functions DeepOHeat's branches consume.

Each :class:`ConfigInput` describes one *varying* PDE configuration — a
coordinate of the paper's function space U.  It knows how to

* ``sample``   — draw raw training instances (e.g. GRF power maps);
* ``encode``   — turn raw instances into the branch-net sensor vector
  (paper: "identified by its values on fixed locations");
* ``values_at`` — evaluate the physical configuration function at arbitrary
  SI points for each instance (used by the PINN residuals);
* ``apply``    — stamp a concrete instance onto a :class:`ChipConfig` so
  the FDM reference can solve exactly the same design.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..bc import ConvectionBC, DirichletBC, NeumannBC
from ..geometry import Face
from ..power import GaussianRandomField2D, GaussianRandomField3D
from ..power.interpolate import grid_bilinear_function
from ..power.traces import TraceFamily, interpolate_trace
from .configs import ChipConfig


class ConfigInput:
    """One varying design configuration; subclasses define the physics.

    ``residual_kind`` tells the loss builder which physics the input's
    face obeys: ``"neumann"`` (prescribed influx / power map),
    ``"convection"`` (Robin, needs ``t_ambient``), ``"dirichlet"``
    (fixed temperature), or ``"volumetric"`` (a 3-D source feeding the
    PDE residual instead of a face).
    """

    name: str = "input"
    residual_kind: str = "none"

    @property
    def sensor_dim(self) -> int:
        """Width of the encoded branch-net input vector."""
        raise NotImplementedError

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` raw training instances (leading axis ``n``)."""
        raise NotImplementedError

    def encode(self, raw: np.ndarray) -> np.ndarray:
        """Encode raw instances (n, ...) into branch inputs (n, sensor_dim)."""
        raise NotImplementedError

    def values_at(self, raw: np.ndarray, points_si: np.ndarray) -> np.ndarray:
        """Physical values of each instance at SI points, shape (n, n_pts)."""
        raise NotImplementedError

    def apply(self, config: ChipConfig, raw_single: np.ndarray) -> ChipConfig:
        """Return a concrete ChipConfig embodying one raw instance."""
        raise NotImplementedError


class PowerMapInput(ConfigInput):
    """A 2-D power map on one face (Experiment A's single input).

    Raw instances are (n1, n2) maps in *power units*; ``unit_flux``
    converts to W/m^2 (paper: one unit = 0.00625 mW per node = 2500 W/m^2).
    Training maps come from a GRF with length scale 0.3 by default.
    """

    residual_kind = "neumann"

    def __init__(
        self,
        chip,
        face: Face = Face.TOP,
        map_shape: Tuple[int, int] = (21, 21),
        unit_flux: float = 2500.0,
        grf: Optional[GaussianRandomField2D] = None,
        encode_scale: float = 1.0,
        name: str = "power_map",
    ):
        if face.axis != 2:
            raise ValueError("power maps are defined on TOP/BOTTOM faces")
        self.chip = chip
        self.face = face
        self.map_shape = tuple(map_shape)
        self.unit_flux = float(unit_flux)
        self.grf = grf if grf is not None else GaussianRandomField2D(
            self.map_shape, length_scale=0.3
        )
        if self.grf.shape != self.map_shape:
            raise ValueError(
                f"GRF shape {self.grf.shape} != map shape {self.map_shape}"
            )
        self.encode_scale = float(encode_scale)
        self.name = name

    @property
    def sensor_dim(self) -> int:
        return int(np.prod(self.map_shape))

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.grf.sample(rng, n)

    def encode(self, raw: np.ndarray) -> np.ndarray:
        raw = np.asarray(raw, dtype=np.float64)
        if raw.ndim == 2:
            raw = raw[None, ...]
        if raw.shape[1:] != self.map_shape:
            raise ValueError(
                f"power map shape {raw.shape[1:]} != expected {self.map_shape}"
            )
        return raw.reshape(raw.shape[0], -1) / self.encode_scale

    def values_at(self, raw: np.ndarray, points_si: np.ndarray) -> np.ndarray:
        """Bilinear flux (W/m^2) of each map at the given face points."""
        raw = np.asarray(raw, dtype=np.float64)
        if raw.ndim == 2:
            raw = raw[None, ...]
        points_si = np.atleast_2d(points_si)
        out = np.empty((raw.shape[0], points_si.shape[0]))
        extent = (self.chip.size[0], self.chip.size[1])
        origin = (self.chip.origin[0], self.chip.origin[1])
        for i, tile_map in enumerate(raw):
            fn = grid_bilinear_function(tile_map * self.unit_flux, extent, origin)
            out[i] = fn(points_si[:, :2])
        return out

    def apply(self, config: ChipConfig, raw_single: np.ndarray) -> ChipConfig:
        raw_single = np.asarray(raw_single, dtype=np.float64)
        if raw_single.shape != self.map_shape:
            raise ValueError(
                f"expected a single {self.map_shape} map, got {raw_single.shape}"
            )
        fn = grid_bilinear_function(
            raw_single * self.unit_flux,
            (self.chip.size[0], self.chip.size[1]),
            (self.chip.origin[0], self.chip.origin[1]),
        )
        return config.with_bc(self.face, NeumannBC(lambda p: fn(p[:, :2])))


class HTCInput(ConfigInput):
    """A uniform heat-transfer coefficient on one face (Experiment B).

    The paper treats a constant HTC as a *function* identified by a single
    sensor value; encoding is min-max normalised onto [0, 1] for network
    conditioning (raw values 333...1000 W/m^2K).
    """

    residual_kind = "convection"

    def __init__(
        self,
        face: Face,
        low: float = 333.33,
        high: float = 1000.0,
        t_ambient: float = 298.15,
        name: Optional[str] = None,
    ):
        if high <= low:
            raise ValueError("need high > low")
        self.face = face
        self.low = float(low)
        self.high = float(high)
        self.t_ambient = float(t_ambient)
        self.name = name if name else f"htc_{face.name.lower()}"

    @property
    def sensor_dim(self) -> int:
        return 1

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def encode(self, raw: np.ndarray) -> np.ndarray:
        raw = np.atleast_1d(np.asarray(raw, dtype=np.float64))
        return ((raw - self.low) / (self.high - self.low)).reshape(-1, 1)

    def values_at(self, raw: np.ndarray, points_si: np.ndarray) -> np.ndarray:
        raw = np.atleast_1d(np.asarray(raw, dtype=np.float64))
        points_si = np.atleast_2d(points_si)
        return np.tile(raw[:, None], (1, points_si.shape[0]))

    def apply(self, config: ChipConfig, raw_single) -> ChipConfig:
        htc = float(np.asarray(raw_single).reshape(()))
        return config.with_bc(self.face, ConvectionBC(htc, self.t_ambient))


class HTCMapInput(ConfigInput):
    """An inhomogeneous HTC distribution on one face.

    The paper (Sec. IV-A example): "If the surface has an inhomogeneous
    HTC distribution, one can simply encode it similarly as we encode a
    2D power map."  Raw instances are (n1, n2) maps of h in W/m^2K over
    the face; training samples come from a GRF mapped into [low, high].
    """

    residual_kind = "convection"

    def __init__(
        self,
        chip,
        face: Face = Face.BOTTOM,
        map_shape: Tuple[int, int] = (11, 11),
        low: float = 333.33,
        high: float = 1000.0,
        t_ambient: float = 298.15,
        grf: Optional[GaussianRandomField2D] = None,
        name: Optional[str] = None,
    ):
        if face.axis != 2:
            raise ValueError("HTC maps are defined on TOP/BOTTOM faces")
        if high <= low:
            raise ValueError("need high > low")
        self.chip = chip
        self.face = face
        self.map_shape = tuple(map_shape)
        self.low = float(low)
        self.high = float(high)
        self.t_ambient = float(t_ambient)
        self.grf = grf if grf is not None else GaussianRandomField2D(
            self.map_shape, length_scale=0.4
        )
        if self.grf.shape != self.map_shape:
            raise ValueError(
                f"GRF shape {self.grf.shape} != map shape {self.map_shape}"
            )
        self.name = name if name else f"htc_map_{face.name.lower()}"

    @property
    def sensor_dim(self) -> int:
        return int(np.prod(self.map_shape))

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """GRF fields squashed through a sigmoid onto [low, high]."""
        fields = self.grf.sample(rng, n)
        squashed = 1.0 / (1.0 + np.exp(-fields))
        return self.low + (self.high - self.low) * squashed

    def encode(self, raw: np.ndarray) -> np.ndarray:
        raw = np.asarray(raw, dtype=np.float64)
        if raw.ndim == 2:
            raw = raw[None, ...]
        if raw.shape[1:] != self.map_shape:
            raise ValueError(
                f"HTC map shape {raw.shape[1:]} != expected {self.map_shape}"
            )
        normalized = (raw - self.low) / (self.high - self.low)
        return normalized.reshape(raw.shape[0], -1)

    def values_at(self, raw: np.ndarray, points_si: np.ndarray) -> np.ndarray:
        raw = np.asarray(raw, dtype=np.float64)
        if raw.ndim == 2:
            raw = raw[None, ...]
        points_si = np.atleast_2d(points_si)
        out = np.empty((raw.shape[0], points_si.shape[0]))
        extent = (self.chip.size[0], self.chip.size[1])
        origin = (self.chip.origin[0], self.chip.origin[1])
        for index, htc_map in enumerate(raw):
            fn = grid_bilinear_function(htc_map, extent, origin)
            out[index] = fn(points_si[:, :2])
        return out

    def apply(self, config: ChipConfig, raw_single: np.ndarray) -> ChipConfig:
        raw_single = np.asarray(raw_single, dtype=np.float64)
        if raw_single.shape != self.map_shape:
            raise ValueError(
                f"expected a single {self.map_shape} map, got {raw_single.shape}"
            )
        fn = grid_bilinear_function(
            raw_single,
            (self.chip.size[0], self.chip.size[1]),
            (self.chip.origin[0], self.chip.origin[1]),
        )
        return config.with_bc(
            self.face, ConvectionBC(lambda p: fn(p[:, :2]), self.t_ambient)
        )


class DirichletInput(ConfigInput):
    """A uniform fixed-temperature boundary as a varying configuration.

    Models, e.g., a cold-plate set-point sweep: raw instances are scalar
    temperatures in kelvin; encoding is min-max normalised.
    """

    residual_kind = "dirichlet"

    def __init__(
        self,
        face: Face,
        low: float = 293.15,
        high: float = 323.15,
        name: Optional[str] = None,
    ):
        if high <= low:
            raise ValueError("need high > low")
        self.face = face
        self.low = float(low)
        self.high = float(high)
        self.name = name if name else f"tfix_{face.name.lower()}"

    @property
    def sensor_dim(self) -> int:
        return 1

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def encode(self, raw: np.ndarray) -> np.ndarray:
        raw = np.atleast_1d(np.asarray(raw, dtype=np.float64))
        return ((raw - self.low) / (self.high - self.low)).reshape(-1, 1)

    def values_at(self, raw: np.ndarray, points_si: np.ndarray) -> np.ndarray:
        raw = np.atleast_1d(np.asarray(raw, dtype=np.float64))
        points_si = np.atleast_2d(points_si)
        return np.tile(raw[:, None], (1, points_si.shape[0]))

    def apply(self, config: ChipConfig, raw_single) -> ChipConfig:
        value = float(np.asarray(raw_single).reshape(()))
        return config.with_bc(self.face, DirichletBC(value))


class VolumetricPowerMapInput(ConfigInput):
    """A 3-D power map as an operator input (the paper's future work).

    "In the future, we will further investigate how DeepOHeat performs ...
    in optimizing 3D power maps" (Sec. VI).  Raw instances are
    (n1, n2, n3) density maps in W/m^3 identified on an equispaced 3-D
    sensor grid ("everything will be exactly the same except it will be
    identified by its values on three-dimensional equispaced grid
    points", Sec. IV-A); the interior PDE residual consumes them as a
    per-function source term.
    """

    residual_kind = "volumetric"
    face = None

    def __init__(
        self,
        chip,
        map_shape: Tuple[int, int, int] = (7, 7, 5),
        unit_density: float = 1.0e7,
        grf: Optional[GaussianRandomField3D] = None,
        name: str = "power_map_3d",
    ):
        self.chip = chip
        self.map_shape = tuple(map_shape)
        self.unit_density = float(unit_density)
        self.grf = grf if grf is not None else GaussianRandomField3D(
            self.map_shape, length_scale=0.35, transform="softplus"
        )
        if self.grf.shape != self.map_shape:
            raise ValueError(
                f"GRF shape {self.grf.shape} != map shape {self.map_shape}"
            )
        self.name = name

    @property
    def sensor_dim(self) -> int:
        return int(np.prod(self.map_shape))

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.grf.sample(rng, n)

    def encode(self, raw: np.ndarray) -> np.ndarray:
        raw = np.asarray(raw, dtype=np.float64)
        if raw.ndim == 3:
            raw = raw[None, ...]
        if raw.shape[1:] != self.map_shape:
            raise ValueError(
                f"3-D power map shape {raw.shape[1:]} != expected {self.map_shape}"
            )
        return raw.reshape(raw.shape[0], -1)

    def _interpolator(self, raw_single: np.ndarray):
        from ..power import GridVolumetricPower

        return GridVolumetricPower(raw_single * self.unit_density, self.chip)

    def values_at(self, raw: np.ndarray, points_si: np.ndarray) -> np.ndarray:
        """Source density (W/m^3) of each map at 3-D interior points."""
        raw = np.asarray(raw, dtype=np.float64)
        if raw.ndim == 3:
            raw = raw[None, ...]
        points_si = np.atleast_2d(points_si)
        out = np.empty((raw.shape[0], points_si.shape[0]))
        for index, volume_map in enumerate(raw):
            out[index] = self._interpolator(volume_map).density(points_si)
        return out

    def apply(self, config: ChipConfig, raw_single: np.ndarray) -> ChipConfig:
        raw_single = np.asarray(raw_single, dtype=np.float64)
        if raw_single.shape != self.map_shape:
            raise ValueError(
                f"expected a single {self.map_shape} map, got {raw_single.shape}"
            )
        return config.with_volumetric_power(self._interpolator(raw_single))


class TransientPowerMapInput(ConfigInput):
    """A time-modulated 2-D power map: ``q(x, t) = map(x) * trace(t)``.

    The transient workload's single operator input.  A raw instance is
    one flat vector ``[map.ravel(); trace samples]``: the spatial half
    is a GRF power map exactly as in :class:`PowerMapInput`, the time
    half is a modulation trace identified by its values on
    ``n_time_sensors`` equispaced hat times (step / ramp / clock-gating
    families from :class:`~repro.power.traces.TraceFamily`).  The branch
    net consumes both halves as one sensor vector — the time-modulated
    power encoding.

    The continuous-in-time source every consumer sees is the
    piecewise-linear reconstruction of the trace samples
    (:func:`~repro.power.traces.interpolate_trace`), so the physics
    residual, the rollout and the theta-scheme reference all integrate
    *the same* function.  ``apply`` stamps the ``t = 0`` flux (the
    initial-condition problem the farm solves); ``apply_at`` stamps any
    other hat time for the reference stepper's time-varying RHS.
    """

    residual_kind = "neumann"
    # Consumed by DeepOHeat.reference_rollout: inputs flagged
    # time-dependent are re-stamped per step time via ``apply_at``.
    time_dependent = True

    def __init__(
        self,
        chip,
        horizon: float,
        face: Face = Face.TOP,
        map_shape: Tuple[int, int] = (11, 11),
        n_time_sensors: int = 12,
        unit_flux: float = 2500.0,
        grf: Optional[GaussianRandomField2D] = None,
        traces: Optional[TraceFamily] = None,
        encode_scale: float = 1.0,
        name: str = "transient_power",
    ):
        if face.axis != 2:
            raise ValueError("power maps are defined on TOP/BOTTOM faces")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if n_time_sensors < 2:
            raise ValueError("need at least 2 time sensors")
        self.chip = chip
        self.horizon = float(horizon)
        self.face = face
        self.map_shape = tuple(map_shape)
        self.n_time_sensors = int(n_time_sensors)
        self.unit_flux = float(unit_flux)
        self.grf = grf if grf is not None else GaussianRandomField2D(
            self.map_shape, length_scale=0.3
        )
        if self.grf.shape != self.map_shape:
            raise ValueError(
                f"GRF shape {self.grf.shape} != map shape {self.map_shape}"
            )
        self.traces = traces if traces is not None else TraceFamily()
        self.encode_scale = float(encode_scale)
        self.name = name

    @property
    def map_size(self) -> int:
        return int(np.prod(self.map_shape))

    @property
    def sensor_dim(self) -> int:
        return self.map_size + self.n_time_sensors

    # -- raw layout ----------------------------------------------------
    def pack(self, maps: np.ndarray, trace_samples: np.ndarray) -> np.ndarray:
        """Stack (n, *map_shape) maps and (n, n_t) traces into raw rows."""
        maps = np.asarray(maps, dtype=np.float64)
        trace_samples = np.asarray(trace_samples, dtype=np.float64)
        if maps.ndim == len(self.map_shape):
            maps = maps[None, ...]
        if trace_samples.ndim == 1:
            trace_samples = trace_samples[None, :]
        if maps.shape[1:] != self.map_shape:
            raise ValueError(
                f"power map shape {maps.shape[1:]} != expected {self.map_shape}"
            )
        if trace_samples.shape[1] != self.n_time_sensors:
            raise ValueError(
                f"trace has {trace_samples.shape[1]} samples, "
                f"expected {self.n_time_sensors}"
            )
        return np.concatenate(
            [maps.reshape(maps.shape[0], -1), trace_samples], axis=1
        )

    def split(self, raw: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Unstack raw rows into ``(maps (n, *shape), traces (n, n_t))``."""
        raw = np.asarray(raw, dtype=np.float64)
        if raw.ndim == 1:
            raw = raw[None, :]
        if raw.shape[1] != self.sensor_dim:
            raise ValueError(
                f"raw width {raw.shape[1]} != expected {self.sensor_dim}"
            )
        maps = raw[:, : self.map_size].reshape((raw.shape[0],) + self.map_shape)
        return maps, raw[:, self.map_size :]

    # -- ConfigInput interface -----------------------------------------
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        maps = self.grf.sample(rng, n)
        samples = self.traces.sample_samples(rng, n, self.n_time_sensors)
        return self.pack(maps, samples)

    def encode(self, raw: np.ndarray) -> np.ndarray:
        maps, trace_samples = self.split(raw)
        scaled = maps.reshape(maps.shape[0], -1) / self.encode_scale
        return np.concatenate([scaled, trace_samples], axis=1)

    def modulation(self, raw: np.ndarray, t_hat: np.ndarray) -> np.ndarray:
        """Trace values ``g(t_hat)`` per instance, shape ``(n, len(t_hat))``."""
        _, trace_samples = self.split(raw)
        values = interpolate_trace(trace_samples, t_hat)
        return values[None, :] if values.ndim == 1 else values

    def values_at(self, raw: np.ndarray, points_si: np.ndarray) -> np.ndarray:
        """Flux (W/m^2) at space-time points ``(x, y, z, t_seconds)``."""
        points_si = np.atleast_2d(points_si)
        if points_si.shape[-1] != 4:
            raise ValueError(
                "transient power maps need 4-column (x, y, z, t) points, "
                f"got {points_si.shape[-1]} columns"
            )
        maps, _ = self.split(raw)
        t_hat = points_si[:, 3] / self.horizon
        modulation = self.modulation(raw, t_hat)  # (n, n_pts)
        out = np.empty((maps.shape[0], points_si.shape[0]))
        extent = (self.chip.size[0], self.chip.size[1])
        origin = (self.chip.origin[0], self.chip.origin[1])
        for index, tile_map in enumerate(maps):
            fn = grid_bilinear_function(tile_map * self.unit_flux, extent, origin)
            out[index] = fn(points_si[:, :2]) * modulation[index]
        return out

    def apply_at(
        self, config: ChipConfig, raw_single: np.ndarray, t_hat: float
    ) -> ChipConfig:
        """Stamp the instantaneous flux at hat time ``t_hat`` onto a config."""
        maps, _ = self.split(raw_single)
        factor = float(self.modulation(raw_single, np.asarray([t_hat]))[0, 0])
        fn = grid_bilinear_function(
            maps[0] * self.unit_flux * factor,
            (self.chip.size[0], self.chip.size[1]),
            (self.chip.origin[0], self.chip.origin[1]),
        )
        return config.with_bc(self.face, NeumannBC(lambda p: fn(p[:, :2])))

    def apply(self, config: ChipConfig, raw_single: np.ndarray) -> ChipConfig:
        """The ``t = 0`` stamp: the initial-condition steady problem."""
        return self.apply_at(config, raw_single, 0.0)


class ScenarioConditioningInput(ConfigInput):
    """A fixed scenario-identity vector as a (physics-inert) branch input.

    The conditioning hook for multi-scenario ("family") training: every
    design of a given scenario carries the same fixed-width vector (a
    normalized summary of where the scenario sits inside its family —
    see :meth:`repro.family.ScenarioFamily.conditioning_vector`), which
    the MIONet consumes through an extra branch.  Under the Hadamard
    feature merge that branch *modulates* the physical branches'
    features, so one set of weights specializes per scenario.

    ``residual_kind`` is ``"none"`` and ``face`` is ``None``: the loss
    builder registers no residual for it, ``apply`` leaves configs
    untouched, and ``values_at`` is identically zero — the vector only
    exists on the encoding side.
    """

    residual_kind = "none"
    face = None

    def __init__(self, vector: np.ndarray,
                 name: str = "scenario_conditioning"):
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.size < 1:
            raise ValueError("conditioning vector must be non-empty")
        self.vector = vector
        self.name = name

    @property
    def sensor_dim(self) -> int:
        """Width of the encoded branch-net input vector."""
        return int(self.vector.size)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Tile the fixed vector ``n`` times (consumes no RNG draws)."""
        return np.tile(self.vector, (int(n), 1))

    def encode(self, raw: np.ndarray) -> np.ndarray:
        """Validated pass-through: raw rows *are* the branch input."""
        raw = np.asarray(raw, dtype=np.float64)
        if raw.ndim == 1:
            raw = raw[None, :]
        if raw.shape[-1] != self.sensor_dim:
            raise ValueError(
                f"conditioning width {raw.shape[-1]} != expected "
                f"{self.sensor_dim}"
            )
        return raw.reshape(raw.shape[0], self.sensor_dim)

    def values_at(self, raw: np.ndarray, points_si: np.ndarray) -> np.ndarray:
        """Zero field: conditioning carries no physical configuration."""
        raw = self.encode(raw)
        points_si = np.atleast_2d(points_si)
        return np.zeros((raw.shape[0], points_si.shape[0]))

    def apply(self, config: ChipConfig, raw_single: np.ndarray) -> ChipConfig:
        """No-op: the concrete physics is fully set by the other inputs."""
        return config


def apply_design(
    config: ChipConfig, inputs: Sequence[ConfigInput], design: dict
) -> ChipConfig:
    """Stamp a named design (``{input_name: raw_value}``) onto a config."""
    missing = {inp.name for inp in inputs} - set(design)
    if missing:
        raise KeyError(f"design missing values for inputs: {sorted(missing)}")
    for inp in inputs:
        config = inp.apply(config, design[inp.name])
    return config
