"""Physics-informed residuals and loss assembly (paper eqs. 8-11).

All residuals are written in hat (nondimensional) units so every component
is O(1) and the unweighted sum of eq. (11) is well-conditioned:

* interior PDE (eq. 10):      sum_i (L_ref/L_i)^2 d2That/dyhat_i^2
                              + q_V L_ref^2 / (k dT_ref) = 0
* Neumann / power map (eq. 8):  s G_a - P L_a / (k dT_ref) = 0
* convection (eq. 9 / eq. 5):   s G_a + (h L_a / k) theta = 0,
                                theta = That + (T_ref - T_amb) / dT_ref
* Dirichlet (eq. 3):            That - (T_d - T_ref) / dT_ref = 0

where ``G_a`` is the hat-space gradient along the face normal's axis and
``s`` the outward-normal sign.  The dimensionless group ``h L / k`` is the
Biot number; for the paper's Experiment A bottom surface it is 2.5.

The PDE residual uses the paper's own form ``k lap T + q_V`` (eq. 2),
which assumes locally uniform conductivity; piecewise-constant fields are
fine away from interfaces, exactly as in the paper's modular model.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import autodiff as ad
from ..autodiff import Tensor
from ..bc import ConvectionBC, DirichletBC, NeumannBC
from ..geometry import Face, Nondimensionalizer
from ..nn.taylor import DerivativeStreams
from .configs import ChipConfig
from .encoding import ConfigInput
from .sampler import CollocationBatch
from .transient import TransientSpec


class PhysicsLossBuilder:
    """Turns derivative streams + a collocation batch into residual losses.

    Parameters
    ----------
    config:
        The base chip design; faces not overridden by an input keep their
        configured boundary condition.
    inputs:
        The varying configurations, in branch order.  Inputs that carry a
        ``face`` attribute override that face's boundary condition.
    nd:
        The hat-coordinate map shared with the trunk net.
    weights:
        Optional per-component weights (default 1.0, as in eq. 11).
    transient:
        When given, the trunk carries a fourth (hat time) coordinate:
        the PDE residual becomes the transient form ``fo dThat/dthat -
        lap_hat That - q_hat = 0`` (time is one more first-derivative
        stream) and an ``"ic"`` component anchors ``That(x, 0)`` to the
        per-function initial field supplied by ``initial_field``.
    initial_field:
        ``initial_field(raws, points_si) -> (n_funcs, n_pts)`` kelvin —
        the t=0 temperature of each sampled configuration at spatial SI
        points (the model backs this with farm-cached steady solves).
    """

    def __init__(
        self,
        config: ChipConfig,
        inputs: Sequence[ConfigInput],
        nd: Nondimensionalizer,
        weights: Optional[Mapping[str, float]] = None,
        transient: Optional[TransientSpec] = None,
        initial_field: Optional[Callable] = None,
    ):
        self.config = config
        self.inputs = list(inputs)
        self.nd = nd
        self.weights = dict(weights) if weights else {}
        self.transient = transient
        self.initial_field = initial_field
        self.l_ref = float(max(nd.lengths))
        # Nondimensional Laplacian weights (L_ref/L_i)^2 of eq. (10); the
        # trainer hands these to the Laplacian-fused stacked propagation.
        # In transient mode the time axis joins with weight 0: the fused
        # Laplacian stream stays purely spatial while the stack still
        # carries dThat/dthat as one more first-derivative stream.
        spatial = tuple((self.l_ref / length) ** 2 for length in nd.lengths)
        self.axis_weights = spatial + (0.0,) if transient else spatial
        self.n_dims = 4 if transient else 3
        self._face_input: Dict[str, Tuple[int, ConfigInput]] = {}
        self._volumetric_input: Optional[Tuple[int, ConfigInput]] = None
        for index, config_input in enumerate(self.inputs):
            if getattr(config_input, "residual_kind", None) == "volumetric":
                if self._volumetric_input is not None:
                    raise ValueError("two volumetric-power inputs configured")
                self._volumetric_input = (index, config_input)
                continue
            face = getattr(config_input, "face", None)
            if face is not None:
                if face.name in self._face_input:
                    raise ValueError(f"two inputs target face {face.name}")
                self._face_input[face.name] = (index, config_input)

    # ------------------------------------------------------------------
    # Constant-field evaluation helpers (numpy; no gradients needed).
    # ------------------------------------------------------------------
    def _pointwise(self, fn, si: np.ndarray) -> np.ndarray:
        """Evaluate a per-point field for cartesian (npts,3) or aligned
        (nf, npts, 3) layouts; result broadcasts against (nf, npts).

        Material/base-config fields are spatial: transient batches carry
        a fourth (time) column that is sliced off before evaluation.
        """
        spatial = si[..., :3]
        if spatial.ndim == 3:
            nf, npts, _ = spatial.shape
            return np.asarray(fn(spatial.reshape(-1, 3))).reshape(nf, npts)
        return np.asarray(fn(spatial))  # (npts,) broadcasts over functions

    def _input_matrix(
        self, index: int, config_input: ConfigInput, raws: Sequence[np.ndarray],
        si: np.ndarray
    ) -> np.ndarray:
        """Per-function configuration values at face points, (nf, npts)."""
        raw = raws[index]
        if si.ndim == 3:
            rows = [
                config_input.values_at(raw[j : j + 1], si[j])[0]
                for j in range(si.shape[0])
            ]
            return np.stack(rows)
        return config_input.values_at(raw, si)

    # ------------------------------------------------------------------
    # Stream requirements (for the selective stacked combine).
    # ------------------------------------------------------------------
    def stream_requirements(self) -> Dict[str, Tuple[str, ...]]:
        """Which streams each region's residual actually consumes.

        Keys are region names, entries are sorted tuples drawn from
        ``"value"``, ``"grad<axis>"`` and ``"laplacian"``.  The training
        path uses this to combine only the (stream, point-range) pairs
        the loss reads — e.g. a Neumann face needs just the gradient
        along its own axis.  Must stay in lock-step with the branching in
        :meth:`face_residual` / :meth:`interior_residual`; kinds those
        methods would reject request everything so the error surfaces
        there, exactly as on the unselective paths.
        """
        everything = tuple(
            ["value"] + [f"grad{i}" for i in range(self.n_dims)]
        )
        if self.transient is not None:
            # Transient PDE residual reads the time derivative (grad3 in
            # the stacked layout) on top of the spatial Laplacian; the
            # IC region only reads the value stream.
            requirements: Dict[str, Tuple[str, ...]] = {
                "interior": ("grad3", "laplacian"),
                "initial": ("value",),
            }
        else:
            requirements = {"interior": ("laplacian",)}
        for face in Face:
            override = self._face_input.get(face.name)
            if override is not None:
                kind = getattr(override[1], "residual_kind", "none")
            else:
                bc = self.config.bc_for(face)
                if isinstance(bc, NeumannBC):
                    kind = "neumann"
                elif isinstance(bc, ConvectionBC):
                    kind = "convection"
                elif isinstance(bc, DirichletBC):
                    kind = "dirichlet"
                else:
                    kind = "unknown"
            if kind == "neumann":
                need = (f"grad{face.axis}",)
            elif kind == "convection":
                need = (f"grad{face.axis}", "value")
            elif kind == "dirichlet":
                need = ("value",)
            else:
                need = everything
            requirements[face.name] = tuple(sorted(need))
        return requirements

    # ------------------------------------------------------------------
    # Residuals.
    # ------------------------------------------------------------------
    def interior_residual(
        self,
        streams: DerivativeStreams,
        si: np.ndarray,
        raws: Sequence[np.ndarray] = (),
    ) -> Tensor:
        """Eq. (10) / eq. (1): the PDE residual over the whole domain.

        When a 3-D power-map input is configured, its per-function source
        values replace the base config's volumetric power.  In transient
        mode the residual gains the ``- fo * dThat/dthat`` term of the
        governing equation (1): the time derivative is the fourth
        first-derivative stream of the Taylor stack.
        """
        laplacian = streams.laplacian(self.axis_weights)
        k_values = self._pointwise(self.config.conductivity, si)
        if self._volumetric_input is not None:
            index, config_input = self._volumetric_input
            q_values = self._input_matrix(index, config_input, raws, si)
        else:
            q_values = self._pointwise(self.config.volumetric_power, si)
        source = q_values * self.l_ref**2 / (k_values * self.nd.dt_ref)
        residual = laplacian + ad.tensor(source)
        if self.transient is not None:
            fo = self.transient.fourier_coefficient(k_values, self.l_ref)
            residual = residual - ad.tensor(fo) * streams.gradient[3]
        return residual

    def initial_residual(
        self,
        streams: DerivativeStreams,
        si: np.ndarray,
        raws: Sequence[np.ndarray],
    ) -> Tensor:
        """IC residual: ``That(x, 0) - That_0(x)`` per sampled function.

        ``That_0`` is each configuration's t=0 steady field (kelvin from
        ``initial_field``, mapped into hat units) — the farm-backed
        anchor that pins the rollout's starting point.
        """
        if self.transient is None:
            raise ValueError("initial_residual requires transient mode")
        if self.initial_field is None:
            raise ValueError(
                "transient loss needs an initial_field provider for the "
                "initial-condition residual"
            )
        t0_kelvin = np.asarray(self.initial_field(raws, si[..., :3]))
        target = (t0_kelvin - self.nd.t_ref) / self.nd.dt_ref
        return streams.value - ad.tensor(target)

    def face_residual(
        self,
        face: Face,
        streams: DerivativeStreams,
        si: np.ndarray,
        raws: Sequence[np.ndarray],
    ) -> Tensor:
        """Eqs. (8)/(9)/(3): the appropriate residual for one face."""
        sign = 1.0 if face.is_max else -1.0
        axis = face.axis
        length = self.nd.lengths[axis]
        k_values = self._pointwise(self.config.conductivity, si)

        def normal_grad() -> Tensor:
            # Lazy: Dirichlet residuals never touch the gradient stream,
            # and the selective stacked combine does not provide it there.
            return sign * streams.gradient[axis]

        override = self._face_input.get(face.name)
        bc = self.config.bc_for(face)

        if override is not None:
            index, config_input = override
            values = self._input_matrix(index, config_input, raws, si)
            # The input's residual_kind decides the physics at this face.
            kind = getattr(config_input, "residual_kind", "none")
            if kind == "neumann":
                target = values * length / (k_values * self.nd.dt_ref)
                return normal_grad() - ad.tensor(target)
            if kind == "convection":
                biot = values * length / k_values
                offset = (self.nd.t_ref - config_input.t_ambient) / self.nd.dt_ref
                theta = streams.value + offset
                return normal_grad() + ad.tensor(biot) * theta
            if kind == "dirichlet":
                target = (values - self.nd.t_ref) / self.nd.dt_ref
                return streams.value - ad.tensor(target)
            raise TypeError(
                f"input {config_input.name!r} on face {face.name} has "
                f"residual_kind {kind!r} with no residual rule"
            )

        if isinstance(bc, NeumannBC):  # covers AdiabaticBC
            influx = self._pointwise(bc.flux_into_body, si)
            target = influx * length / (k_values * self.nd.dt_ref)
            return normal_grad() - ad.tensor(target)
        if isinstance(bc, ConvectionBC):
            htc = self._pointwise(bc.htc_values, si)
            biot = htc * length / k_values
            offset = (self.nd.t_ref - bc.t_ambient) / self.nd.dt_ref
            theta = streams.value + offset
            return normal_grad() + ad.tensor(biot) * theta
        if isinstance(bc, DirichletBC):
            t_fixed = self._pointwise(bc.temperature, si)
            target = (t_fixed - self.nd.t_ref) / self.nd.dt_ref
            return streams.value - ad.tensor(target)
        raise TypeError(f"unsupported boundary condition {bc!r}")

    # ------------------------------------------------------------------
    # Total loss (eq. 11).
    # ------------------------------------------------------------------
    def loss(
        self,
        streams_by_region: Mapping[str, DerivativeStreams],
        batch: CollocationBatch,
        raws: Sequence[np.ndarray],
    ) -> Tuple[Tensor, Dict[str, float]]:
        """Sum of mean-squared residuals plus per-component values."""
        components: Dict[str, Tensor] = {}
        components["pde"] = self.interior_residual(
            streams_by_region["interior"], batch.si["interior"], raws
        )
        for face in Face:
            components[f"bc:{face.name}"] = self.face_residual(
                face, streams_by_region[face.name], batch.si[face.name], raws
            )
        if self.transient is not None and "initial" in streams_by_region:
            components["ic"] = self.initial_residual(
                streams_by_region["initial"], batch.si["initial"], raws
            )

        total: Optional[Tensor] = None
        values: Dict[str, float] = {}
        for name, residual in components.items():
            weight = self.weights.get(name, 1.0)
            # ad.mean_square fuses square -> mean into a single tape node
            # (and skips the residual-sized square temporary).
            term = weight * ad.mean_square(residual)
            values[name] = term.item()
            total = term if total is None else total + term
        return total, values
