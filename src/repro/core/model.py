"""The DeepOHeat model facade: operator network + physics + units.

Glues together the pieces of Fig. 2: configuration encoders feeding branch
nets, the (Fourier-featured) trunk net over hat coordinates, the MIONet
merge, and the physics-informed loss.  Provides prediction APIs in SI units
and a reference path through the FDM solver for validation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import autodiff as ad
from ..autodiff import Tensor
from ..engine import CompiledSurrogate
from ..fdm import SolveFarm, ThermalSolution, get_default_farm
from ..fdm.assembly import assemble_rhs
from ..fdm.transient import TransientResult, TransientSolver
from ..geometry import StructuredGrid
from ..nn import MIONet, load_checkpoint, save_checkpoint
from ..nn.taylor import DerivativeStreams, stream_block_index
from .configs import ChipConfig
from .encoding import ConfigInput, apply_design
from .losses import PhysicsLossBuilder
from .sampler import CollocationBatch
from .transient import TransientSpec


class DeepOHeat:
    """Physics-informed multi-input operator surrogate for chip thermals.

    Parameters
    ----------
    config:
        Base chip design; the parts not covered by ``inputs`` stay fixed.
    inputs:
        Varying design configurations, in the same order as the MIONet's
        branch nets.
    net:
        The operator network; branch count must match ``inputs``.
    dt_ref:
        Temperature scale of the hat system (K).
    loss_weights:
        Optional residual weights (paper uses the unweighted sum).
    transient:
        A :class:`TransientSpec` switches the model into transient mode:
        the trunk consumes ``(x, y, z, t)`` (its input width must be 4),
        the physics loss gains the time-derivative and initial-condition
        terms, and rollout prediction/validation APIs become available.
    """

    def __init__(
        self,
        config: ChipConfig,
        inputs: Sequence[ConfigInput],
        net: MIONet,
        dt_ref: float = 10.0,
        loss_weights: Optional[Mapping[str, float]] = None,
        transient: Optional[TransientSpec] = None,
    ):
        if len(inputs) != net.n_inputs:
            raise ValueError(
                f"{len(inputs)} config inputs but the net has {net.n_inputs} branches"
            )
        for config_input, branch in zip(inputs, net.branches):
            if config_input.sensor_dim != branch.in_features:
                raise ValueError(
                    f"input {config_input.name!r} encodes {config_input.sensor_dim} "
                    f"sensors but its branch expects {branch.in_features}"
                )
        if transient is not None and net.trunk.in_features != 4:
            raise ValueError(
                f"transient mode needs a 4-input trunk (x, y, z, t); this "
                f"trunk consumes {net.trunk.in_features} coordinates"
            )
        self.config = config
        self.inputs = list(inputs)
        self.net = net
        self.nd = config.nondimensionalizer(dt_ref)
        self.transient = transient
        self._ic_grid: Optional[StructuredGrid] = (
            StructuredGrid(config.chip, transient.ic_grid_shape)
            if transient is not None
            else None
        )
        self.builder = PhysicsLossBuilder(
            config,
            inputs,
            self.nd,
            loss_weights,
            transient=transient,
            initial_field=self.initial_fields if transient is not None else None,
        )
        self._engine: Optional[CompiledSurrogate] = None
        # Per-batch derived geometry (regions/offsets/points/selections),
        # keyed by batch object identity; see compute_loss.
        self._loss_geometry: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_raws(self, raws: Sequence[np.ndarray]) -> List[Tensor]:
        """Encode raw instance batches into branch input tensors."""
        if len(raws) != len(self.inputs):
            raise ValueError(f"expected {len(self.inputs)} raw batches")
        return [
            ad.tensor(config_input.encode(raw))
            for config_input, raw in zip(self.inputs, raws)
        ]

    def encode_design(self, design: Mapping[str, np.ndarray]) -> List[Tensor]:
        """Encode one named design ``{input_name: value}`` (batch of 1)."""
        encoded = []
        for config_input in self.inputs:
            if config_input.name not in design:
                raise KeyError(f"design missing input {config_input.name!r}")
            raw = np.asarray(design[config_input.name], dtype=np.float64)
            encoded.append(ad.tensor(config_input.encode(raw[None, ...] if raw.ndim
                                                         else raw)))
        return encoded

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def compute_loss(
        self,
        raws: Sequence[np.ndarray],
        batch: CollocationBatch,
        stacked: bool = True,
    ) -> Tuple[Tensor, Dict[str, float]]:
        """Physics loss over a batch of sampled configurations.

        ``stacked`` selects the fused single-tensor derivative-stream
        propagation (the default training hot path, carrying the weighted
        Laplacian instead of per-axis Hessians); ``stacked=False`` runs
        the legacy per-axis streams as the numerical reference.
        """
        branch_inputs = self.encode_raws(raws)
        geometry = self._loss_geometry
        if geometry is None or geometry.get("batch") is not batch:
            # Fixed-mesh plans return the identical batch object every
            # iteration; caching the derived geometry keeps the
            # points-array identity stable so the trunk's constant-prefix
            # cache hits, and reuses the (range/index) selections.  The
            # concatenation / selection entries are filled lazily by
            # whichever path runs.
            regions = list(batch.hat)
            counts = [batch.hat[r].shape[-2] for r in regions]
            offsets = np.concatenate([[0], np.cumsum(counts)]).astype(int)
            geometry = {"batch": batch, "regions": regions, "offsets": offsets}
            self._loss_geometry = geometry
        regions = geometry["regions"]
        offsets = geometry["offsets"]

        lap_weights = self.builder.axis_weights if stacked else None
        if stacked and not batch.aligned:
            if "selections" not in geometry:
                geometry["trunk_points"], geometry["selections"] = (
                    self._build_selections(batch, regions, offsets)
                )
            streams_by_region = self._selected_streams(
                branch_inputs,
                geometry["trunk_points"],
                geometry["selections"],
                regions,
                lap_weights,
            )
            return self.builder.loss(streams_by_region, batch, raws)

        if "all_points" not in geometry:
            axis = 1 if batch.aligned else 0
            geometry["all_points"] = np.concatenate(
                [batch.hat[r] for r in regions], axis=axis
            )
        all_points = geometry["all_points"]

        if batch.aligned:
            streams = self.net.forward_aligned_with_derivatives(
                branch_inputs, all_points, stacked=stacked,
                laplacian_weights=lap_weights,
            )
        else:
            streams = self.net.forward_cartesian_with_derivatives(
                branch_inputs, all_points, stacked=stacked,
            )

        streams_by_region: Dict[str, DerivativeStreams] = {}
        for region, start, stop in zip(regions, offsets[:-1], offsets[1:]):
            window = (slice(None), slice(int(start), int(stop)))
            streams_by_region[region] = DerivativeStreams(
                value=streams.value[window],
                gradient=[g[window] for g in streams.gradient],
                hessian_diag=[h[window] for h in streams.hessian_diag],
                laplacian_weighted=(
                    streams.laplacian_weighted[window]
                    if streams.laplacian_weighted is not None and region == "interior"
                    else None
                ),
                laplacian_axis_weights=streams.laplacian_axis_weights,
            )
        return self.builder.loss(streams_by_region, batch, raws)

    def _build_selections(
        self, batch: CollocationBatch, regions: Sequence[str], offsets: np.ndarray
    ):
        """Map each (region, required stream) pair to stack rows.

        The builder declares which streams each residual reads
        (:meth:`PhysicsLossBuilder.stream_requirements`).  With a
        deduplicating batch (structured mesh: face nodes are rows of the
        base region) the trunk runs only on the unique base points and
        face windows become index selections into the stack; otherwise
        the regions' concatenated points are used with range selections.
        Returns ``(trunk_points, [(region, need, rows), ...])``.
        """
        dedup = batch.dedup_indices if batch.dedup_base else None
        if dedup is not None:
            trunk_points = batch.hat[batch.dedup_base]
        else:
            trunk_points = np.concatenate(
                [batch.hat[r] for r in regions], axis=0
            )
        n, d = trunk_points.shape
        requirements = self.builder.stream_requirements()

        selections = []  # (region, need, rows) — rows: (start, stop) | index array
        for region, start, stop in zip(regions, offsets[:-1], offsets[1:]):
            for need in requirements[region]:
                base = stream_block_index(need, d) * n
                if dedup is None:
                    rows = (base + int(start), base + int(stop))
                elif region == batch.dedup_base:
                    rows = (base, base + n)
                else:
                    rows = base + dedup[region]
                selections.append((region, need, rows))
        return trunk_points, selections

    def _selected_streams(
        self,
        branch_inputs: Sequence[Tensor],
        trunk_points: np.ndarray,
        selections,
        regions: Sequence[str],
        lap_weights: Sequence[float],
    ) -> Dict[str, DerivativeStreams]:
        """Combine only the (stream, region) windows the loss consumes.

        ``MIONet.forward_cartesian_selected`` contracts the selected
        windows in one fused ``gather_combine`` node — skipping e.g. the
        interior windows of all gradient streams, by far the widest
        unused blocks — and, with a deduplicating batch, evaluates the
        trunk only once per unique mesh node.
        """
        d = trunk_points.shape[1]
        combined, _ = self.net.forward_cartesian_selected(
            branch_inputs,
            trunk_points,
            [rows for _, _, rows in selections],
            laplacian_weights=lap_weights,
        )

        parts: Dict[str, Dict[str, Tensor]] = {region: {} for region in regions}
        col = 0
        for region, need, rows in selections:
            length = (rows[1] - rows[0]) if isinstance(rows, tuple) else len(rows)
            window = combined[:, col : col + length]
            col += length
            if need == "value":
                window = window + self.net.bias
            parts[region][need] = window

        streams_by_region: Dict[str, DerivativeStreams] = {}
        for region in regions:
            entries = parts[region]
            streams_by_region[region] = DerivativeStreams(
                value=entries.get("value"),
                gradient=[entries.get(f"grad{i}") for i in range(d)],
                hessian_diag=[],
                laplacian_weighted=entries.get("laplacian"),
                laplacian_axis_weights=tuple(lap_weights),
            )
        return streams_by_region

    # ------------------------------------------------------------------
    # Serving engine
    # ------------------------------------------------------------------
    def compile(
        self,
        copy: bool = True,
        max_cache_entries: int = 8,
        workers: Optional[int] = None,
    ) -> CompiledSurrogate:
        """Freeze the current weights into a serving engine.

        ``copy=True`` (default) snapshots the weights, so the engine is
        immune to further training on this model; ``copy=False`` returns
        a live view that always evaluates the current parameters.
        ``workers`` threads the engine's merge matmul (see
        :class:`~repro.engine.CompiledSurrogate`).
        """
        return CompiledSurrogate(self, copy=copy,
                                 max_cache_entries=max_cache_entries,
                                 workers=workers)

    def compile_with_cache(
        self, cache, workers: Optional[int] = None
    ) -> CompiledSurrogate:
        """Live-view engine backed by an externally shared trunk cache.

        Used by session façades (:class:`~repro.api.ThermalService`)
        that serve many scenarios: engines share one
        :class:`~repro.engine.TrunkFeatureCache`, whose keys bind the
        trunk-weight digest, so scenarios sharing a query grid reuse
        features safely.
        """
        return CompiledSurrogate(self, copy=False, cache=cache, workers=workers)

    @property
    def engine(self) -> CompiledSurrogate:
        """Lazily-built live-view engine backing the ``predict*`` facade.

        Shares the model's parameter arrays (all updates are in place),
        and its trunk-feature cache keys on a weight digest, so continued
        training or checkpoint loads are picked up automatically.
        """
        if self._engine is None:
            self._engine = CompiledSurrogate(self, copy=False)
        return self._engine

    # ------------------------------------------------------------------
    # Prediction (SI units)
    # ------------------------------------------------------------------
    def predict(
        self, design: Mapping[str, np.ndarray], points_si: np.ndarray
    ) -> np.ndarray:
        """Temperature (kelvin) at SI points for one design."""
        return self.engine.predict(design, points_si=points_si)

    def predict_many(
        self, designs: Sequence[Mapping[str, np.ndarray]], points_si: np.ndarray
    ) -> np.ndarray:
        """Batched prediction: (n_designs, n_points) kelvin.

        Delegates to the compiled engine: one (cached) trunk evaluation,
        one stacked branch pass, one matmul — the amortised "GPU-like"
        throughput mode of the speedup study.
        """
        return self.engine.predict_batch(designs, points_si=points_si)

    def predict_many_uncached(
        self, designs: Sequence[Mapping[str, np.ndarray]], points_si: np.ndarray
    ) -> np.ndarray:
        """Legacy autodiff-layer prediction path: (n_designs, n_points) kelvin.

        Re-evaluates the full network (branch *and* trunk) through the
        :mod:`repro.autodiff` ops under ``no_grad``.  Kept as the numerical
        reference for engine-correctness tests and as the naive baseline
        the serving benchmark compares against.
        """
        points_hat = self.nd.to_hat(np.atleast_2d(points_si))
        with ad.no_grad():
            branch_rows = []
            for config_input in self.inputs:
                rows = [
                    config_input.encode(
                        np.asarray(design[config_input.name], dtype=np.float64)
                    )
                    for design in designs
                ]
                branch_rows.append(ad.tensor(np.concatenate(rows, axis=0)))
            t_hat = self.net.forward_cartesian(branch_rows, points_hat)
        return self.nd.temp_to_si(t_hat.data)

    def predict_grid(
        self, design: Mapping[str, np.ndarray], grid: StructuredGrid
    ) -> np.ndarray:
        """Full nodal field, shaped like the grid."""
        flat = self.engine.predict(design, grid=grid)
        return grid.to_array(flat)

    # ------------------------------------------------------------------
    # Transient mode
    # ------------------------------------------------------------------
    def _require_transient(self) -> TransientSpec:
        if self.transient is None:
            raise ValueError(
                "this model is steady-state; build it with transient="
                "TransientSpec(...) for rollout APIs"
            )
        return self.transient

    def initial_fields(
        self, raws: Sequence[np.ndarray], points_si: np.ndarray
    ) -> np.ndarray:
        """t=0 temperature (kelvin) of each sampled configuration.

        Solves every function's initial-condition steady problem (its
        inputs stamped at t=0) through the shared solve farm — one
        cached factorization, one RHS assembly + back-substitution per
        function — and trilinearly samples the fields at ``points_si``
        (spatial, ``(n_pts, 3)``).  Returns ``(n_funcs, n_pts)``.
        """
        self._require_transient()
        n_funcs = len(np.asarray(raws[0]))
        problems = []
        for index in range(n_funcs):
            config = self.config
            for config_input, raw in zip(self.inputs, raws):
                config = config_input.apply(config, raw[index])
            problems.append(config.heat_problem(self._ic_grid))
        solutions = get_default_farm().solve_many(problems)
        points = np.atleast_2d(np.asarray(points_si, dtype=np.float64))
        return np.stack([solution.sample(points) for solution in solutions])

    def predict_rollout(
        self,
        design: Mapping[str, np.ndarray],
        times: np.ndarray,
        grid: Optional[StructuredGrid] = None,
        points_si: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Temperature rollout (kelvin) at ``times`` (s), ``(n_t, n_pts)``.

        Delegates to the engine's amortized rollout path: one trunk
        evaluation over the whole space-time block (cached across
        repeated rollouts), one branch pass, one matmul.
        """
        self._require_transient()
        return self.engine.predict_rollout(
            [design], times, grid=grid, points_si=points_si
        )[0]

    def reference_rollout(
        self,
        design: Mapping[str, np.ndarray],
        grid: StructuredGrid,
        dt: float,
        n_steps: int,
        theta: float = 1.0,
        save_every: int = 1,
        callback=None,
        farm: Optional[SolveFarm] = None,
    ) -> TransientResult:
        """Theta-scheme labels for this design's transient response.

        Starts from the farm-backed initial steady field, then steps the
        :class:`~repro.fdm.transient.TransientSolver` under the design's
        *time-varying* right-hand side: inputs exposing ``apply_at`` are
        re-stamped per step time and only their O(n) RHS half is
        re-assembled — the operator and its factorizations come from the
        shared farm cache.
        """
        spec = self._require_transient()
        farm = farm if farm is not None else get_default_farm()
        problem_zero = self.concrete_config(design).heat_problem(grid)
        solver = TransientSolver(problem_zero, spec.rho_cp, farm=farm)
        operator = farm.operator_for(problem_zero)

        time_inputs = [
            (config_input, design[config_input.name])
            for config_input in self.inputs
            if getattr(config_input, "time_dependent", False)
        ]
        base_config = self.concrete_config(design)

        def rhs_at(t_seconds: float) -> np.ndarray:
            config = base_config
            t_hat = t_seconds / spec.horizon
            for config_input, raw in time_inputs:
                config = config_input.apply_at(config, raw, t_hat)
            return assemble_rhs(config.heat_problem(grid), operator).rhs

        return solver.run(
            solver.initial_steady(),
            dt,
            n_steps,
            theta=theta,
            save_every=save_every,
            rhs=rhs_at if time_inputs else None,
            callback=callback,
        )

    # ------------------------------------------------------------------
    # Reference path
    # ------------------------------------------------------------------
    def concrete_config(self, design: Mapping[str, np.ndarray]) -> ChipConfig:
        """The ChipConfig with this design stamped on (for the FDM oracle)."""
        return apply_design(self.config, self.inputs, dict(design))

    def reference_solution(
        self,
        design: Mapping[str, np.ndarray],
        grid: StructuredGrid,
        farm: Optional[SolveFarm] = None,
    ) -> ThermalSolution:
        """Solve the same design with the FDM reference solver.

        Goes through the shared-operator solve farm, so repeated
        validations of designs that only move RHS terms (power maps)
        reuse one cached factorization.
        """
        farm = farm if farm is not None else get_default_farm()
        return farm.solve(self.concrete_config(design).heat_problem(grid))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path, meta: Optional[Dict] = None):
        meta = dict(meta or {})
        meta.setdefault("dt_ref", self.nd.dt_ref)
        meta.setdefault("inputs", [inp.name for inp in self.inputs])
        return save_checkpoint(self.net, path, meta=meta)

    def load(self, path) -> Dict:
        return load_checkpoint(self.net, path)
