"""Modular chip configurations (paper Sec. III).

A :class:`ChipConfig` bundles everything that defines one concrete thermal
problem: geometry, conductivity field, volumetric power and one boundary
condition per face.  It converts directly into an FDM
:class:`~repro.fdm.HeatProblem` (the reference path) and provides the
nondimensionalizer DeepOHeat trains in (the surrogate path), so both
solvers consume *the same* physical description.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..bc import AdiabaticBC, BoundaryCondition, ConvectionBC, DirichletBC
from ..fdm.assembly import HeatProblem
from ..geometry import Cuboid, Face, Nondimensionalizer, StructuredGrid
from ..materials import ConductivityField, UniformConductivity
from ..power import VolumetricPower, ZeroPower


@dataclass
class ChipConfig:
    """One fully-specified chip design (a point in the paper's space U)."""

    chip: Cuboid
    conductivity: ConductivityField = field(
        default_factory=lambda: UniformConductivity(0.1)
    )
    volumetric_power: VolumetricPower = field(default_factory=ZeroPower)
    bcs: Dict[Face, BoundaryCondition] = field(default_factory=dict)
    t_ambient: float = 298.15

    def __post_init__(self):
        for face in Face:
            self.bcs.setdefault(face, AdiabaticBC())

    # ------------------------------------------------------------------
    def bc_for(self, face: Face) -> BoundaryCondition:
        return self.bcs[face]

    def with_bc(self, face: Face, bc: BoundaryCondition) -> "ChipConfig":
        """A copy with one face's condition replaced (non-mutating)."""
        new_bcs = dict(self.bcs)
        new_bcs[face] = bc
        return replace(self, bcs=new_bcs)

    def with_volumetric_power(self, power: VolumetricPower) -> "ChipConfig":
        return replace(self, volumetric_power=power)

    # ------------------------------------------------------------------
    def heat_problem(self, grid: Optional[StructuredGrid] = None,
                     grid_shape=None) -> HeatProblem:
        """The FDM problem for this design (reference-solver path)."""
        if grid is None:
            if grid_shape is None:
                raise ValueError("provide either a grid or a grid_shape")
            grid = StructuredGrid(self.chip, tuple(grid_shape))
        return HeatProblem(
            grid=grid,
            conductivity=self.conductivity,
            volumetric_power=self.volumetric_power,
            bcs=dict(self.bcs),
        )

    def nondimensionalizer(self, dt_ref: float = 10.0) -> Nondimensionalizer:
        """Hat-space map anchored at this design's ambient temperature."""
        return Nondimensionalizer.for_cuboid(
            self.chip, t_ref=self.t_ambient, dt_ref=dt_ref
        )

    def is_well_posed(self) -> bool:
        return any(
            isinstance(self.bcs[face], (DirichletBC, ConvectionBC)) for face in Face
        )
