"""Paper experiment presets (Sec. V-A and V-B) at three scales.

``scale="paper"`` reproduces the reported architecture and budget exactly
(10 000 iterations x 50 functions on a V100 in the paper — hours on CPU);
``scale="ci"`` is the default used by benches (same algorithm, smaller
nets/budget); ``scale="test"`` is for unit tests (seconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..bc import AdiabaticBC, ConvectionBC
from ..geometry import (
    Face,
    StructuredGrid,
    paper_chip_a,
    paper_chip_b,
)
from ..materials import UniformConductivity
from ..nn import MLP, FourierFeatures, MIONet, TrunkNet
from ..power import GaussianRandomField2D, GaussianRandomField3D, UniformLayerPower
from ..power.traces import TraceFamily
from .configs import ChipConfig
from .encoding import (
    HTCInput,
    PowerMapInput,
    TransientPowerMapInput,
    VolumetricPowerMapInput,
)
from .model import DeepOHeat
from .sampler import (
    CollocationPlan,
    MeshCollocation,
    RandomCollocation,
    TransientCollocation,
)
from .trainer import Trainer, TrainerConfig
from .transient import TransientSpec

T_AMB = 298.15


@dataclass
class ExperimentSetup:
    """Everything needed to train and evaluate one paper experiment."""

    name: str
    scale: str
    model: DeepOHeat
    plan: CollocationPlan
    trainer_config: TrainerConfig
    eval_grid: StructuredGrid
    description: str

    def make_trainer(self) -> Trainer:
        return Trainer(self.model, self.plan, self.trainer_config)


_SCALES_A: Dict[str, Dict] = {
    # branch widths exclude the sensor-input layer; trunk widths exclude
    # the Fourier layer. q = shared output feature width.  fourier_std is
    # the paper's 2*pi at paper scale; smaller budgets train dramatically
    # better with lower frequency content (see the Fourier ablation bench
    # and EXPERIMENTS.md).
    "paper": dict(
        map_shape=(21, 21), branch=[256] * 9, trunk=[128] * 5, q=128,
        fourier_freqs=64, fourier_std=2.0 * np.pi, train_grid=(21, 21, 11),
        iterations=10_000, n_functions=50, decay_every=500, seed=0,
    ),
    "ci": dict(
        map_shape=(21, 21), branch=[96] * 4, trunk=[64] * 3, q=64,
        fourier_freqs=24, fourier_std=2.0, train_grid=(11, 11, 7),
        iterations=2500, n_functions=10, decay_every=300, seed=0,
    ),
    "test": dict(
        map_shape=(7, 7), branch=[24] * 2, trunk=[24] * 2, q=16,
        fourier_freqs=8, fourier_std=1.0, train_grid=(5, 5, 4),
        iterations=700, n_functions=6, decay_every=150, seed=0,
    ),
}


def experiment_a(
    scale: str = "ci",
    htc_bottom: float = 500.0,
    conductivity: float = 0.1,
    dt_ref: float = 10.0,
    seed: int = 0,
) -> ExperimentSetup:
    """Sec. V-A: single-input DeepOHeat over 2-D top-surface power maps.

    Chip 1x1x0.5 mm, k=0.1 W/mK, adiabatic sides, convection bottom
    (h=500, T_amb=298.15 K), GRF(l=0.3) training maps, Fourier trunk with
    2*pi-std frequencies, Swish activations.
    """
    if scale not in _SCALES_A:
        raise ValueError(f"unknown scale {scale!r}; choices: {sorted(_SCALES_A)}")
    params = _SCALES_A[scale]
    rng = np.random.default_rng(seed)
    chip = paper_chip_a()

    config = ChipConfig(
        chip=chip,
        conductivity=UniformConductivity(conductivity),
        bcs={
            Face.BOTTOM: ConvectionBC(htc_bottom, T_AMB),
            **{face: AdiabaticBC() for face in
               (Face.XMIN, Face.XMAX, Face.YMIN, Face.YMAX)},
        },
        t_ambient=T_AMB,
    )
    power_input = PowerMapInput(
        chip=chip,
        face=Face.TOP,
        map_shape=params["map_shape"],
        unit_flux=2500.0,
        grf=GaussianRandomField2D(params["map_shape"], length_scale=0.3),
    )

    q = params["q"]
    branch = MLP(
        [power_input.sensor_dim] + params["branch"] + [q],
        activation="swish",
        rng=rng,
    )
    fourier = FourierFeatures(
        3, params["fourier_freqs"], std=params["fourier_std"], rng=rng
    )
    trunk_mlp = MLP(
        [fourier.out_features] + params["trunk"] + [q],
        activation="swish",
        rng=rng,
    )
    net = MIONet([branch], TrunkNet(trunk_mlp, fourier))

    model = DeepOHeat(config, [power_input], net, dt_ref=dt_ref)
    train_grid = StructuredGrid(chip, params["train_grid"])
    plan = MeshCollocation(train_grid, model.nd)
    trainer_config = TrainerConfig(
        iterations=params["iterations"],
        n_functions=params["n_functions"],
        learning_rate=1e-3,
        decay_rate=0.9,
        decay_every=params["decay_every"],
        seed=params["seed"],
    )
    eval_grid = StructuredGrid(chip, (21, 21, 11))
    return ExperimentSetup(
        name="experiment_a",
        scale=scale,
        model=model,
        plan=plan,
        trainer_config=trainer_config,
        eval_grid=eval_grid,
        description=(
            "2D power map on TOP; adiabatic sides; convection bottom "
            f"(h={htc_bottom} W/m^2K); k={conductivity} W/mK; scale={scale}"
        ),
    )


_SCALES_B: Dict[str, Dict] = {
    # fourier_std: pi at paper scale; lower for small budgets (see the
    # Fourier ablation bench).  focus_band importance-samples the thin
    # volumetric power layer, whose stiff local curvature uniform sampling
    # barely sees at reduced point counts.
    # loss_weights up-weight the convection residuals: the stiff volumetric
    # source dominates the unweighted loss and drowns out the (small) HTC
    # sensitivity signal at reduced budgets; x30 restores monotone
    # peak-vs-HTC behaviour (measured in the Fig.-5 bench).
    "paper": dict(
        branch=[20] * 5, trunk=[128] * 5, q=50, fourier_freqs=64,
        fourier_std=np.pi, n_interior=7000 // 8, n_per_face=7000 // 48,
        iterations=5000, n_functions=20, decay_every=500, focus_band=None,
        loss_weights=None,
    ),
    "ci": dict(
        branch=[20] * 3, trunk=[48] * 3, q=32, fourier_freqs=16,
        fourier_std=3.0, n_interior=300, n_per_face=40,
        iterations=1500, n_functions=12, decay_every=300,
        focus_band=(0.40, 0.60, 0.3),
        loss_weights={"bc:TOP": 30.0, "bc:BOTTOM": 30.0},
    ),
    "test": dict(
        branch=[12] * 2, trunk=[20] * 2, q=12, fourier_freqs=6,
        fourier_std=1.5, n_interior=60, n_per_face=12,
        iterations=900, n_functions=6, decay_every=200,
        focus_band=(0.40, 0.60, 0.3),
        loss_weights={"bc:TOP": 30.0, "bc:BOTTOM": 30.0},
    ),
}


def experiment_b(
    scale: str = "ci",
    htc_range: Tuple[float, float] = (333.33, 1000.0),
    conductivity: float = 0.1,
    dt_ref: float = 2.0,
    seed: int = 0,
    aligned: bool = True,
) -> ExperimentSetup:
    """Sec. V-B: dual-input DeepOHeat over top/bottom HTCs.

    Chip 1x1x0.55 mm; a 0.05 mm-thick uniform volumetric layer dissipating
    0.625 mW; convection on both top and bottom with HTCs sampled from
    [333.33, 1000]^2; random collocation points redrawn per function
    (aligned batching); pi-std Fourier features.
    """
    if scale not in _SCALES_B:
        raise ValueError(f"unknown scale {scale!r}; choices: {sorted(_SCALES_B)}")
    params = _SCALES_B[scale]
    rng = np.random.default_rng(seed)
    chip = paper_chip_b()

    config = ChipConfig(
        chip=chip,
        conductivity=UniformConductivity(conductivity),
        volumetric_power=UniformLayerPower.paper_experiment_b(chip),
        bcs={
            Face.TOP: ConvectionBC(500.0, T_AMB),
            Face.BOTTOM: ConvectionBC(500.0, T_AMB),
        },
        t_ambient=T_AMB,
    )
    htc_top = HTCInput(Face.TOP, *htc_range, t_ambient=T_AMB)
    htc_bottom = HTCInput(Face.BOTTOM, *htc_range, t_ambient=T_AMB)

    q = params["q"]
    branches = [
        MLP([1] + params["branch"] + [q], activation="swish", rng=rng),
        MLP([1] + params["branch"] + [q], activation="swish", rng=rng),
    ]
    fourier = FourierFeatures(
        3, params["fourier_freqs"], std=params["fourier_std"], rng=rng
    )
    trunk_mlp = MLP(
        [fourier.out_features] + params["trunk"] + [q],
        activation="swish",
        rng=rng,
    )
    net = MIONet(branches, TrunkNet(trunk_mlp, fourier))

    model = DeepOHeat(
        config,
        [htc_top, htc_bottom],
        net,
        dt_ref=dt_ref,
        loss_weights=params["loss_weights"],
    )
    plan = RandomCollocation(
        chip,
        model.nd,
        n_interior=params["n_interior"],
        n_per_face=params["n_per_face"],
        aligned=aligned,
        focus_band=params["focus_band"],
    )
    trainer_config = TrainerConfig(
        iterations=params["iterations"],
        n_functions=params["n_functions"],
        learning_rate=1e-3,
        decay_rate=0.9,
        decay_every=params["decay_every"],
        seed=seed,
    )
    eval_grid = StructuredGrid(chip, (21, 21, 12))
    return ExperimentSetup(
        name="experiment_b",
        scale=scale,
        model=model,
        plan=plan,
        trainer_config=trainer_config,
        eval_grid=eval_grid,
        description=(
            "dual HTC inputs on TOP/BOTTOM over "
            f"[{htc_range[0]:.2f}, {htc_range[1]:.2f}]^2; 0.625 mW volumetric "
            f"layer; aligned={aligned}; scale={scale}"
        ),
    )


_SCALES_V: Dict[str, Dict] = {
    "ci": dict(
        map_shape=(7, 7, 5), branch=[96] * 3, trunk=[64] * 3, q=48,
        fourier_freqs=16, fourier_std=2.0, train_grid=(9, 9, 7),
        iterations=1500, n_functions=10, decay_every=300,
    ),
    "test": dict(
        map_shape=(4, 4, 3), branch=[24] * 2, trunk=[20] * 2, q=16,
        fourier_freqs=6, fourier_std=1.0, train_grid=(5, 5, 4),
        iterations=250, n_functions=5, decay_every=150,
    ),
}


def experiment_volumetric(
    scale: str = "ci",
    conductivity: float = 0.1,
    unit_density: float = 5.0e6,
    dt_ref: float = 10.0,
    seed: int = 0,
) -> ExperimentSetup:
    """Future-work extension: a 3-D volumetric power map as operator input.

    The paper closes with "we will further investigate how DeepOHeat
    performs ... in optimizing 3D power maps" (Sec. VI) and sketches the
    encoding in Sec. IV-A ("identified by its values on three-dimensional
    equispaced grid points").  This preset realises it: GRF-sampled
    non-negative 3-D density maps heat the chip volumetrically; the chip is
    cooled by convection on top and bottom.  There is no paper-scale
    variant — the paper never ran this experiment.
    """
    if scale not in _SCALES_V:
        raise ValueError(f"unknown scale {scale!r}; choices: {sorted(_SCALES_V)}")
    params = _SCALES_V[scale]
    rng = np.random.default_rng(seed)
    chip = paper_chip_a()

    config = ChipConfig(
        chip=chip,
        conductivity=UniformConductivity(conductivity),
        bcs={
            Face.TOP: ConvectionBC(500.0, T_AMB),
            Face.BOTTOM: ConvectionBC(500.0, T_AMB),
        },
        t_ambient=T_AMB,
    )
    power_input = VolumetricPowerMapInput(
        chip=chip,
        map_shape=params["map_shape"],
        unit_density=unit_density,
        grf=GaussianRandomField3D(
            params["map_shape"], length_scale=0.35, transform="softplus"
        ),
    )

    q = params["q"]
    branch = MLP(
        [power_input.sensor_dim] + params["branch"] + [q],
        activation="swish",
        rng=rng,
    )
    fourier = FourierFeatures(
        3, params["fourier_freqs"], std=params["fourier_std"], rng=rng
    )
    trunk_mlp = MLP(
        [fourier.out_features] + params["trunk"] + [q],
        activation="swish",
        rng=rng,
    )
    net = MIONet([branch], TrunkNet(trunk_mlp, fourier))

    model = DeepOHeat(config, [power_input], net, dt_ref=dt_ref)
    plan = MeshCollocation(StructuredGrid(chip, params["train_grid"]), model.nd)
    trainer_config = TrainerConfig(
        iterations=params["iterations"],
        n_functions=params["n_functions"],
        learning_rate=1e-3,
        decay_rate=0.9,
        decay_every=params["decay_every"],
        seed=seed,
    )
    eval_grid = StructuredGrid(chip, (13, 13, 9))
    return ExperimentSetup(
        name="experiment_volumetric",
        scale=scale,
        model=model,
        plan=plan,
        trainer_config=trainer_config,
        eval_grid=eval_grid,
        description=(
            f"3D volumetric power map input {params['map_shape']} "
            f"(paper future work); convection top+bottom; scale={scale}"
        ),
    )


_SCALES_T: Dict[str, Dict] = {
    # horizon: the chip's through-thickness diffusion time is
    # rho_cp Lz^2 / k = 1.6e6 * (0.5 mm)^2 / 0.1 = 4 s and the lumped RC
    # (capacity / convective conductance) is ~1.6 s, so a 4 s window
    # shows the full step response including partial saturation.
    # ic_weight: the IC anchor is the only *labelled* signal in the loss;
    # up-weighting it keeps the rollout's starting point pinned while the
    # PDE residual shapes the dynamics.
    "ci": dict(
        map_shape=(11, 11), n_time_sensors=12, branch=[96] * 3,
        trunk=[64] * 3, q=48, fourier_freqs=20, fourier_std=2.0,
        n_interior=384, n_per_face=48, n_initial=96, ic_grid=(9, 9, 6),
        iterations=2200, n_functions=8, decay_every=300,
        horizon=4.0, rho_cp=1.6e6, ic_weight=4.0,
    ),
    "test": dict(
        map_shape=(5, 5), n_time_sensors=6, branch=[24] * 2,
        trunk=[24] * 2, q=16, fourier_freqs=8, fourier_std=1.0,
        n_interior=96, n_per_face=16, n_initial=32, ic_grid=(5, 5, 4),
        iterations=400, n_functions=4, decay_every=150,
        horizon=4.0, rho_cp=1.6e6, ic_weight=4.0,
    ),
}


def experiment_transient(
    scale: str = "ci",
    htc_bottom: float = 500.0,
    conductivity: float = 0.1,
    dt_ref: float = 10.0,
    seed: int = 0,
) -> ExperimentSetup:
    """Transient extension: time-modulated power pulses on the chip top.

    The paper's governing equation (1) is transient but only its steady
    limit (eq. 2) is trained; this preset trains the full equation.  The
    experiment-A chip keeps its geometry, conductivity and cooling, the
    single operator input becomes a (GRF map, power trace) pair
    ``q(x, t) = map(x) * trace(t)``, the trunk consumes ``(x, y, z, t)``
    and the loss adds the ``fo dThat/dthat`` stream plus a farm-anchored
    initial-condition term.  Validation is against the theta-scheme
    :class:`~repro.fdm.transient.TransientSolver` on held-out pulses
    (see ``repro transient`` / :mod:`repro.experiments.exp_c`).
    """
    if scale not in _SCALES_T:
        raise ValueError(f"unknown scale {scale!r}; choices: {sorted(_SCALES_T)}")
    params = _SCALES_T[scale]
    rng = np.random.default_rng(seed)
    chip = paper_chip_a()

    config = ChipConfig(
        chip=chip,
        conductivity=UniformConductivity(conductivity),
        bcs={
            Face.BOTTOM: ConvectionBC(htc_bottom, T_AMB),
            **{face: AdiabaticBC() for face in
               (Face.XMIN, Face.XMAX, Face.YMIN, Face.YMAX)},
        },
        t_ambient=T_AMB,
    )
    spec = TransientSpec(
        rho_cp=params["rho_cp"],
        horizon=params["horizon"],
        ic_grid_shape=params["ic_grid"],
    )
    power_input = TransientPowerMapInput(
        chip=chip,
        horizon=spec.horizon,
        face=Face.TOP,
        map_shape=params["map_shape"],
        n_time_sensors=params["n_time_sensors"],
        unit_flux=2500.0,
        grf=GaussianRandomField2D(params["map_shape"], length_scale=0.3),
        traces=TraceFamily(),
    )

    q = params["q"]
    branch = MLP(
        [power_input.sensor_dim] + params["branch"] + [q],
        activation="swish",
        rng=rng,
    )
    fourier = FourierFeatures(
        4, params["fourier_freqs"], std=params["fourier_std"], rng=rng
    )
    trunk_mlp = MLP(
        [fourier.out_features] + params["trunk"] + [q],
        activation="swish",
        rng=rng,
    )
    net = MIONet([branch], TrunkNet(trunk_mlp, fourier))

    model = DeepOHeat(
        config,
        [power_input],
        net,
        dt_ref=dt_ref,
        loss_weights={"ic": params["ic_weight"]},
        transient=spec,
    )
    plan = TransientCollocation(
        chip,
        model.nd,
        horizon=spec.horizon,
        n_interior=params["n_interior"],
        n_per_face=params["n_per_face"],
        n_initial=params["n_initial"],
    )
    trainer_config = TrainerConfig(
        iterations=params["iterations"],
        n_functions=params["n_functions"],
        learning_rate=1e-3,
        decay_rate=0.9,
        decay_every=params["decay_every"],
        seed=seed,
    )
    eval_grid = StructuredGrid(chip, (13, 13, 9))
    return ExperimentSetup(
        name="experiment_transient",
        scale=scale,
        model=model,
        plan=plan,
        trainer_config=trainer_config,
        eval_grid=eval_grid,
        description=(
            f"time-modulated top power map {params['map_shape']} x "
            f"{params['n_time_sensors']} trace sensors over a "
            f"{params['horizon']:g} s window; convection bottom "
            f"(h={htc_bottom} W/m^2K); scale={scale}"
        ),
    )
