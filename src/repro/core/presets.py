"""Legacy preset factories — thin shims over the declarative scenario API.

The paper's experiment presets now live as *scenario builders* in
:mod:`repro.api.presets` (``scenario_experiment_a`` etc.); every factory
here is a deprecated one-liner that builds the scenario and compiles it,
so the legacy path and the ``ThermalScenario``-routed path are the same
code and produce bitwise-identical setups.  Prefer::

    from repro.api import scenario_experiment_a
    setup = scenario_experiment_a(scale="ci").compile()

or go through :class:`repro.api.ThermalService` for the full lifecycle.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

from ..geometry import StructuredGrid
from .model import DeepOHeat
from .sampler import CollocationPlan
from .trainer import Trainer, TrainerConfig

T_AMB = 298.15


@dataclass
class ExperimentSetup:
    """Everything needed to train and evaluate one workload.

    ``scenario`` carries the :class:`~repro.api.ThermalScenario` this
    setup was compiled from (None for hand-assembled setups).
    """

    name: str
    scale: str
    model: DeepOHeat
    plan: CollocationPlan
    trainer_config: TrainerConfig
    eval_grid: StructuredGrid
    description: str
    scenario: Optional[object] = None

    def make_trainer(self) -> Trainer:
        return Trainer(self.model, self.plan, self.trainer_config)


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.core.{name} is deprecated; build the scenario with "
        f"repro.api.scenario_{name} (or a scenario JSON) and .compile() it",
        DeprecationWarning,
        stacklevel=3,
    )


def experiment_a(
    scale: str = "ci",
    htc_bottom: float = 500.0,
    conductivity: float = 0.1,
    dt_ref: float = 10.0,
    seed: int = 0,
) -> ExperimentSetup:
    """Deprecated shim for :func:`repro.api.scenario_experiment_a`."""
    from ..api.presets import scenario_experiment_a

    _deprecated("experiment_a")
    return scenario_experiment_a(
        scale=scale, htc_bottom=htc_bottom, conductivity=conductivity,
        dt_ref=dt_ref, seed=seed,
    ).compile()


def experiment_b(
    scale: str = "ci",
    htc_range: Tuple[float, float] = (333.33, 1000.0),
    conductivity: float = 0.1,
    dt_ref: float = 2.0,
    seed: int = 0,
    aligned: bool = True,
) -> ExperimentSetup:
    """Deprecated shim for :func:`repro.api.scenario_experiment_b`."""
    from ..api.presets import scenario_experiment_b

    _deprecated("experiment_b")
    return scenario_experiment_b(
        scale=scale, htc_range=htc_range, conductivity=conductivity,
        dt_ref=dt_ref, seed=seed, aligned=aligned,
    ).compile()


def experiment_volumetric(
    scale: str = "ci",
    conductivity: float = 0.1,
    unit_density: float = 5.0e6,
    dt_ref: float = 10.0,
    seed: int = 0,
) -> ExperimentSetup:
    """Deprecated shim for :func:`repro.api.scenario_experiment_volumetric`."""
    from ..api.presets import scenario_experiment_volumetric

    _deprecated("experiment_volumetric")
    return scenario_experiment_volumetric(
        scale=scale, conductivity=conductivity, unit_density=unit_density,
        dt_ref=dt_ref, seed=seed,
    ).compile()


def experiment_transient(
    scale: str = "ci",
    htc_bottom: float = 500.0,
    conductivity: float = 0.1,
    dt_ref: float = 10.0,
    seed: int = 0,
) -> ExperimentSetup:
    """Deprecated shim for :func:`repro.api.scenario_experiment_transient`."""
    from ..api.presets import scenario_experiment_transient

    _deprecated("experiment_transient")
    return scenario_experiment_transient(
        scale=scale, htc_bottom=htc_bottom, conductivity=conductivity,
        dt_ref=dt_ref, seed=seed,
    ).compile()
