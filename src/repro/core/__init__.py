"""DeepOHeat core: the paper's primary contribution."""

from .configs import ChipConfig
from .encoding import (
    ConfigInput,
    DirichletInput,
    HTCInput,
    HTCMapInput,
    PowerMapInput,
    TransientPowerMapInput,
    VolumetricPowerMapInput,
    apply_design,
)
from .losses import PhysicsLossBuilder
from .model import DeepOHeat
from .presets import (
    ExperimentSetup,
    experiment_a,
    experiment_b,
    experiment_transient,
    experiment_volumetric,
)
from .sampler import (
    CollocationBatch,
    CollocationPlan,
    MeshCollocation,
    RandomCollocation,
    TransientCollocation,
    total_points,
)
from .trainer import Trainer, TrainerConfig, TrainingHistory
from .transient import TransientSpec

__all__ = [
    "ChipConfig",
    "CollocationBatch",
    "CollocationPlan",
    "ConfigInput",
    "DeepOHeat",
    "DirichletInput",
    "ExperimentSetup",
    "HTCInput",
    "HTCMapInput",
    "MeshCollocation",
    "PhysicsLossBuilder",
    "PowerMapInput",
    "RandomCollocation",
    "TransientCollocation",
    "TransientPowerMapInput",
    "TransientSpec",
    "VolumetricPowerMapInput",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "apply_design",
    "experiment_a",
    "experiment_b",
    "experiment_transient",
    "experiment_volumetric",
    "total_points",
]
