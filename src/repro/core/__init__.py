"""DeepOHeat core: the paper's primary contribution."""

from .configs import ChipConfig
from .encoding import (
    ConfigInput,
    DirichletInput,
    HTCInput,
    HTCMapInput,
    PowerMapInput,
    VolumetricPowerMapInput,
    apply_design,
)
from .losses import PhysicsLossBuilder
from .model import DeepOHeat
from .presets import (
    ExperimentSetup,
    experiment_a,
    experiment_b,
    experiment_volumetric,
)
from .sampler import (
    CollocationBatch,
    CollocationPlan,
    MeshCollocation,
    RandomCollocation,
    total_points,
)
from .trainer import Trainer, TrainerConfig, TrainingHistory

__all__ = [
    "ChipConfig",
    "CollocationBatch",
    "CollocationPlan",
    "ConfigInput",
    "DeepOHeat",
    "DirichletInput",
    "ExperimentSetup",
    "HTCInput",
    "HTCMapInput",
    "MeshCollocation",
    "PhysicsLossBuilder",
    "PowerMapInput",
    "RandomCollocation",
    "VolumetricPowerMapInput",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "apply_design",
    "experiment_a",
    "experiment_b",
    "experiment_volumetric",
    "total_points",
]
