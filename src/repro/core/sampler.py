"""Collocation plans: where the physics residuals are enforced.

Two regimes mirror the paper's experiments:

* **mesh** (Experiment A): the full structured mesh is fed to the trunk at
  every iteration, shared across all sampled configurations ("cartesian"
  batching).
* **random** (Experiment B): fresh uniform points are drawn each iteration;
  optionally per-configuration ("aligned" batching — the paper redraws
  coordinates for every sampled HTC tuple).

All plans emit points in hat (unit-cube) coordinates for the trunk plus
the matching SI coordinates for evaluating configuration functions and
material fields.  Region keys: ``"interior"`` and each ``Face.name``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple  # noqa: F401  (Tuple used in hints)

import numpy as np

from ..geometry import Cuboid, Face, Nondimensionalizer, StructuredGrid


@dataclass
class CollocationBatch:
    """One iteration's collocation points.

    ``hat[region]`` is (n_pts, 3) for cartesian mode or
    (n_funcs, n_pts, 3) for aligned mode; ``si`` mirrors the layout.

    When every region's points are rows of one base region (a structured
    mesh: face nodes are mesh nodes), ``dedup_base`` names that region
    and ``dedup_indices[region]`` holds each other region's row indices
    into it (unique within a region, in the region's own row order).
    The stacked training path then evaluates the trunk only on the
    unique points and gathers region windows by index instead of
    propagating duplicate rows.
    """

    hat: Dict[str, np.ndarray]
    si: Dict[str, np.ndarray]
    aligned: bool
    dedup_base: Optional[str] = None
    dedup_indices: Optional[Dict[str, np.ndarray]] = None

    @property
    def regions(self) -> Tuple[str, ...]:
        return tuple(self.hat)

    def counts(self) -> Dict[str, int]:
        return {
            region: points.shape[-2] for region, points in self.hat.items()
        }


class CollocationPlan:
    """Base interface: produce a :class:`CollocationBatch` per iteration.

    ``time_dependent`` marks plans whose points carry a fourth (hat
    time) column; the trainer cross-checks it against the model's
    transient mode so a mismatch fails fast instead of as a shape error
    deep inside the stacked propagation.
    """

    aligned = False
    time_dependent = False

    def batch(self, rng: np.random.Generator, n_funcs: int) -> CollocationBatch:
        raise NotImplementedError


class MeshCollocation(CollocationPlan):
    """Fixed structured-mesh collocation (Experiment A style).

    The PDE residual is imposed on every mesh node ("the 4851 mesh grid
    points of the entire simulation domain are fed into the trunk net");
    each BC residual is imposed on that face's nodes.
    """

    aligned = False

    def __init__(self, grid: StructuredGrid, nd: Nondimensionalizer):
        self.grid = grid
        self.nd = nd
        points = grid.points()
        self._si = {"interior": points}
        self._hat = {"interior": nd.to_hat(points)}
        dedup_indices = {}
        for face in Face:
            face_points = grid.face_points(face)
            self._si[face.name] = face_points
            self._hat[face.name] = nd.to_hat(face_points)
            # face_points is points()[face_mask], so the flat node indices
            # are exactly the face rows' positions in the interior block.
            dedup_indices[face.name] = grid.face_indices(face)
        # The grid never changes, so the batch is assembled exactly once;
        # every iteration gets the same (read-only by convention) views
        # rather than fresh dicts/arrays.
        self._batch = CollocationBatch(
            hat=self._hat,
            si=self._si,
            aligned=False,
            dedup_base="interior",
            dedup_indices=dedup_indices,
        )

    def batch(self, rng: np.random.Generator, n_funcs: int) -> CollocationBatch:
        return self._batch


class RandomCollocation(CollocationPlan):
    """Fresh uniform points per iteration (Experiment B style).

    With ``aligned=True`` each configuration draws its own point set
    (shape (n_funcs, n_pts, 3)), as in the paper's Sec. V-B.

    ``focus_band`` optionally concentrates a fraction of the interior
    points inside a hat-z band — importance sampling for thin volumetric
    power layers, whose stiff local curvature the PDE residual otherwise
    barely sees under uniform sampling.
    """

    def __init__(
        self,
        chip: Cuboid,
        nd: Nondimensionalizer,
        n_interior: int = 1000,
        n_per_face: int = 120,
        aligned: bool = True,
        focus_band: Optional[Tuple[float, float, float]] = None,
    ):
        if n_interior < 1 or n_per_face < 1:
            raise ValueError("need at least one point per region")
        if focus_band is not None:
            z0, z1, fraction = focus_band
            if not 0.0 <= z0 < z1 <= 1.0:
                raise ValueError("focus band needs 0 <= z0 < z1 <= 1")
            if not 0.0 < fraction < 1.0:
                raise ValueError("focus fraction must be in (0, 1)")
        self.chip = chip
        self.nd = nd
        self.n_interior = int(n_interior)
        self.n_per_face = int(n_per_face)
        self.aligned = bool(aligned)
        self.focus_band = focus_band

    def _draw(self, rng: np.random.Generator, count: int,
              face: Optional[Face]) -> np.ndarray:
        hat = rng.uniform(size=(count, 3))
        if face is not None:
            hat[:, face.axis] = 1.0 if face.is_max else 0.0
        elif self.focus_band is not None:
            z0, z1, fraction = self.focus_band
            n_focus = int(round(fraction * count))
            if n_focus > 0:
                hat[:n_focus, 2] = rng.uniform(z0, z1, size=n_focus)
        return hat

    def batch(self, rng: np.random.Generator, n_funcs: int) -> CollocationBatch:
        hat: Dict[str, np.ndarray] = {}
        si: Dict[str, np.ndarray] = {}
        groups = n_funcs if self.aligned else 1
        for region, face, count in [("interior", None, self.n_interior)] + [
            (f.name, f, self.n_per_face) for f in Face
        ]:
            draws = np.stack(
                [self._draw(rng, count, face) for _ in range(groups)]
            )
            if not self.aligned:
                draws = draws[0]
            hat[region] = draws
            si[region] = self.nd.to_si(draws)
        return CollocationBatch(hat=hat, si=si, aligned=self.aligned)


class TransientCollocation(CollocationPlan):
    """Space-time collocation for the transient residual (4-column points).

    Every region's points gain a hat-time coordinate in ``[0, 1]``:

    * ``"interior"`` — fresh uniform draws over the space-time cylinder,
      where the ``dT/dt - alpha lap T = q`` residual is enforced;
    * each face — spatial face points at uniform times (the boundary
      conditions hold for all t);
    * ``"initial"`` — spatial points pinned at ``t = 0``, where the
      initial-condition loss anchors the network to the farm-solved
      steady field of each sampled configuration.

    SI points carry the time column in *seconds* (``t_hat * horizon``)
    so configuration functions receive physical space-time coordinates.
    Batches are cartesian (shared across sampled functions), matching
    the stacked selective-combine training path.
    """

    aligned = False
    time_dependent = True

    def __init__(
        self,
        chip: Cuboid,
        nd: Nondimensionalizer,
        horizon: float,
        n_interior: int = 512,
        n_per_face: int = 64,
        n_initial: int = 128,
    ):
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if n_interior < 1 or n_per_face < 1 or n_initial < 1:
            raise ValueError("need at least one point per region")
        self.chip = chip
        self.nd = nd
        self.horizon = float(horizon)
        self.n_interior = int(n_interior)
        self.n_per_face = int(n_per_face)
        self.n_initial = int(n_initial)

    def _to_si(self, hat: np.ndarray) -> np.ndarray:
        si = np.empty_like(hat)
        si[:, :3] = self.nd.to_si(hat[:, :3])
        si[:, 3] = hat[:, 3] * self.horizon
        return si

    def _draw(
        self, rng: np.random.Generator, count: int, face: Optional[Face],
        t_zero: bool
    ) -> np.ndarray:
        hat = rng.uniform(size=(count, 4))
        if face is not None:
            hat[:, face.axis] = 1.0 if face.is_max else 0.0
        if t_zero:
            hat[:, 3] = 0.0
        return hat

    def batch(self, rng: np.random.Generator, n_funcs: int) -> CollocationBatch:
        hat: Dict[str, np.ndarray] = {}
        si: Dict[str, np.ndarray] = {}
        regions = (
            [("interior", None, self.n_interior, False)]
            + [(f.name, f, self.n_per_face, False) for f in Face]
            + [("initial", None, self.n_initial, True)]
        )
        for region, face, count, t_zero in regions:
            draws = self._draw(rng, count, face, t_zero)
            hat[region] = draws
            si[region] = self._to_si(draws)
        return CollocationBatch(hat=hat, si=si, aligned=False)


def total_points(batch: CollocationBatch) -> int:
    """Total trunk evaluations in a batch (for throughput reporting)."""
    return int(sum(np.prod(p.shape[:-1]) for p in batch.hat.values()))
