"""Cuboid geometry primitives (the paper's chip model, Fig. 1)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np


class Face(enum.Enum):
    """One of the six axis-aligned faces of a cuboid.

    Values encode ``(axis, is_max)``; e.g. ``TOP`` is the +z face where the
    paper's 2-D power maps live, ``BOTTOM`` the -z convection surface.
    """

    XMIN = (0, False)
    XMAX = (0, True)
    YMIN = (1, False)
    YMAX = (1, True)
    BOTTOM = (2, False)
    TOP = (2, True)

    @property
    def axis(self) -> int:
        return self.value[0]

    @property
    def is_max(self) -> bool:
        return self.value[1]

    @property
    def normal(self) -> np.ndarray:
        """Outward unit normal."""
        direction = np.zeros(3)
        direction[self.axis] = 1.0 if self.is_max else -1.0
        return direction

    @property
    def tangent_axes(self) -> Tuple[int, int]:
        """The two in-plane axes, ordered ascending."""
        return tuple(i for i in range(3) if i != self.axis)

    @property
    def opposite(self) -> "Face":
        return _OPPOSITE[self]


_OPPOSITE = {
    Face.XMIN: Face.XMAX,
    Face.XMAX: Face.XMIN,
    Face.YMIN: Face.YMAX,
    Face.YMAX: Face.YMIN,
    Face.BOTTOM: Face.TOP,
    Face.TOP: Face.BOTTOM,
}

SIDE_FACES = (Face.XMIN, Face.XMAX, Face.YMIN, Face.YMAX)
"""The four lateral faces — adiabatic in both paper experiments."""


@dataclass(frozen=True)
class Cuboid:
    """Axis-aligned cuboid: ``origin`` corner plus positive ``size`` (SI metres)."""

    origin: Tuple[float, float, float]
    size: Tuple[float, float, float]

    def __post_init__(self):
        if len(self.origin) != 3 or len(self.size) != 3:
            raise ValueError("origin and size must be 3-vectors")
        if any(s <= 0 for s in self.size):
            raise ValueError(f"size components must be positive, got {self.size}")

    # ------------------------------------------------------------------
    @property
    def lo(self) -> np.ndarray:
        return np.asarray(self.origin, dtype=np.float64)

    @property
    def hi(self) -> np.ndarray:
        return self.lo + np.asarray(self.size, dtype=np.float64)

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def volume(self) -> float:
        return float(np.prod(self.size))

    def face_area(self, face: Face) -> float:
        a, b = face.tangent_axes
        return float(self.size[a] * self.size[b])

    def face_coordinate(self, face: Face) -> float:
        """The constant coordinate value of ``face`` along its axis."""
        return float(self.hi[face.axis] if face.is_max else self.lo[face.axis])

    # ------------------------------------------------------------------
    def contains(self, points: np.ndarray, tol: float = 1e-12) -> np.ndarray:
        """Boolean mask of points inside or on the boundary."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.all(
            (points >= self.lo - tol) & (points <= self.hi + tol), axis=1
        )

    def on_face(self, points: np.ndarray, face: Face, tol: float = 1e-12) -> np.ndarray:
        """Boolean mask of points lying on a given face."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        coordinate = self.face_coordinate(face)
        return self.contains(points, tol) & (
            np.abs(points[:, face.axis] - coordinate) <= tol
        )

    @classmethod
    def from_mm(cls, origin_mm, size_mm) -> "Cuboid":
        """Convenience constructor in millimetres (the paper's unit)."""
        return cls(
            origin=tuple(float(v) * 1e-3 for v in origin_mm),
            size=tuple(float(v) * 1e-3 for v in size_mm),
        )


def paper_chip_a() -> Cuboid:
    """Experiment A chip: 1 mm x 1 mm x 0.5 mm (Sec. V-A.1)."""
    return Cuboid.from_mm((0.0, 0.0, 0.0), (1.0, 1.0, 0.5))


def paper_chip_b() -> Cuboid:
    """Experiment B chip: 1 mm x 1 mm x 0.55 mm (Sec. V-B)."""
    return Cuboid.from_mm((0.0, 0.0, 0.0), (1.0, 1.0, 0.55))
