"""Unit handling and nondimensionalization.

Chips are millimetre-scale while PINN training is only well-conditioned on
O(1) quantities, so DeepOHeat training runs in a "hat" system:

* coordinates mapped per-axis onto the unit cube,
* temperature mapped to ``(T - T_ref) / dT_ref``.

Under this map the steady heat equation ``k * lap(T) + qV = 0`` becomes

    k * dT_ref * sum_i (1 / L_i^2) d^2 That / dyhat_i^2 + qV = 0

so each axis contributes a Laplacian weight ``1 / L_i^2``.  The class below
centralises those factors and round-trips exactly (unit tested).

The paper's unit conventions (Sec. V-A.1): the chip is 1 mm x 1 mm x 0.5 mm,
and "one-unit power corresponds to 0.00625 mW" on a 21 x 21 top-surface
grid, i.e. one power unit per node is 0.00625 mW over a (0.05 mm)^2 tile —
a surface flux of 2500 W/m^2 per unit.  Helpers below make that conversion
explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

MM = 1e-3
"""One millimetre in metres."""

MW = 1e-3
"""One milliwatt in watts."""

# Paper Experiment A: power-map units (Sec. V-A.1).
PAPER_UNIT_POWER_W = 0.00625e-3
"""Watts represented by one power-map unit at a grid node."""

PAPER_TILE_AREA_M2 = (0.05 * MM) ** 2
"""Area of one 21x21-grid tile on the 1 mm x 1 mm top surface."""

PAPER_UNIT_FLUX_W_PER_M2 = PAPER_UNIT_POWER_W / PAPER_TILE_AREA_M2
"""Surface heat flux (W/m^2) represented by one power-map unit (= 2500)."""


def power_units_to_flux(units: np.ndarray) -> np.ndarray:
    """Convert paper power-map units to a surface flux in W/m^2."""
    return np.asarray(units, dtype=np.float64) * PAPER_UNIT_FLUX_W_PER_M2


def flux_to_power_units(flux: np.ndarray) -> np.ndarray:
    """Inverse of :func:`power_units_to_flux`."""
    return np.asarray(flux, dtype=np.float64) / PAPER_UNIT_FLUX_W_PER_M2


@dataclass(frozen=True)
class Nondimensionalizer:
    """Bidirectional map between SI and unit-cube ("hat") coordinates.

    Parameters
    ----------
    origin:
        SI coordinates of the domain corner mapped to ``(0, 0, 0)``.
    lengths:
        SI extent of each axis (must be positive).
    t_ref:
        Reference (ambient) temperature in kelvin; maps to ``That = 0``.
    dt_ref:
        Temperature scale in kelvin; ``That = 1`` corresponds to
        ``t_ref + dt_ref``.
    """

    origin: Tuple[float, float, float]
    lengths: Tuple[float, float, float]
    t_ref: float = 298.15
    dt_ref: float = 10.0

    def __post_init__(self):
        if any(length <= 0 for length in self.lengths):
            raise ValueError(f"lengths must be positive, got {self.lengths}")
        if self.dt_ref <= 0:
            raise ValueError("dt_ref must be positive")

    # -- coordinates ----------------------------------------------------
    def to_hat(self, points_si: np.ndarray) -> np.ndarray:
        """Map SI points (n, d) into the unit cube."""
        points_si = np.asarray(points_si, dtype=np.float64)
        origin = np.asarray(self.origin[: points_si.shape[-1]])
        lengths = np.asarray(self.lengths[: points_si.shape[-1]])
        return (points_si - origin) / lengths

    def to_si(self, points_hat: np.ndarray) -> np.ndarray:
        """Map unit-cube points back to SI coordinates."""
        points_hat = np.asarray(points_hat, dtype=np.float64)
        origin = np.asarray(self.origin[: points_hat.shape[-1]])
        lengths = np.asarray(self.lengths[: points_hat.shape[-1]])
        return origin + points_hat * lengths

    # -- temperature ----------------------------------------------------
    def temp_to_hat(self, t_kelvin: np.ndarray) -> np.ndarray:
        return (np.asarray(t_kelvin, dtype=np.float64) - self.t_ref) / self.dt_ref

    def temp_to_si(self, t_hat: np.ndarray) -> np.ndarray:
        return self.t_ref + np.asarray(t_hat, dtype=np.float64) * self.dt_ref

    # -- PDE scale factors ----------------------------------------------
    def laplacian_weights(self) -> Tuple[float, float, float]:
        """Per-axis weights ``1 / L_i^2`` of the hat-space Laplacian."""
        return tuple(1.0 / length**2 for length in self.lengths)

    def gradient_weight(self, axis: int) -> float:
        """``d/dy_i = (1 / L_i) d/dyhat_i``."""
        return 1.0 / self.lengths[axis]

    @classmethod
    def for_cuboid(cls, cuboid, t_ref: float = 298.15, dt_ref: float = 10.0):
        """Build from a :class:`repro.geometry.cuboid.Cuboid`."""
        return cls(
            origin=tuple(cuboid.origin),
            lengths=tuple(cuboid.size),
            t_ref=t_ref,
            dt_ref=dt_ref,
        )
