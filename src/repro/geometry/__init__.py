"""Chip geometry: cuboids, stacks, structured grids, samplers, units."""

from .cuboid import SIDE_FACES, Cuboid, Face, paper_chip_a, paper_chip_b
from .grid import StructuredGrid, paper_grid_a
from .sampling import (
    sample_boundary,
    sample_face,
    sample_interior,
    sample_interior_lhs,
    sample_volume_and_faces,
    stratified_interior,
)
from .stack import CuboidStack, Layer
from .units import (
    MM,
    MW,
    PAPER_TILE_AREA_M2,
    PAPER_UNIT_FLUX_W_PER_M2,
    PAPER_UNIT_POWER_W,
    Nondimensionalizer,
    flux_to_power_units,
    power_units_to_flux,
)

__all__ = [
    "MM",
    "MW",
    "PAPER_TILE_AREA_M2",
    "PAPER_UNIT_FLUX_W_PER_M2",
    "PAPER_UNIT_POWER_W",
    "SIDE_FACES",
    "Cuboid",
    "CuboidStack",
    "Face",
    "Layer",
    "Nondimensionalizer",
    "StructuredGrid",
    "flux_to_power_units",
    "paper_chip_a",
    "paper_chip_b",
    "paper_grid_a",
    "power_units_to_flux",
    "sample_boundary",
    "sample_face",
    "sample_interior",
    "sample_interior_lhs",
    "sample_volume_and_faces",
    "stratified_interior",
]
