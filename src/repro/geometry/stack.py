"""Stacked-cuboid chip models (3D-IC die stacks).

The paper's modular chip model (Sec. III, Fig. 1) represents a 3D IC as
"single or multiple stacked rectangular cuboid(s)".  A :class:`CuboidStack`
is a z-ordered list of cuboids sharing one footprint; it exposes the layer
structure (for per-layer conductivity and volumetric power) and collapses to
a single bounding cuboid for grid generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .cuboid import Cuboid


@dataclass(frozen=True)
class Layer:
    """One die/interposer layer: a cuboid plus an optional label."""

    cuboid: Cuboid
    name: str = ""

    @property
    def z_interval(self) -> Tuple[float, float]:
        return float(self.cuboid.lo[2]), float(self.cuboid.hi[2])


class CuboidStack:
    """Z-contiguous stack of same-footprint cuboids.

    Raises ``ValueError`` if footprints differ or gaps/overlaps exist, so an
    inconsistent 3D-IC model fails fast at construction.
    """

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise ValueError("stack needs at least one layer")
        ordered = sorted(layers, key=lambda layer: layer.cuboid.lo[2])
        footprint = (ordered[0].cuboid.origin[:2], ordered[0].cuboid.size[:2])
        for layer in ordered[1:]:
            if (layer.cuboid.origin[:2], layer.cuboid.size[:2]) != footprint:
                raise ValueError(
                    f"layer {layer.name!r} footprint differs from the stack's"
                )
        for below, above in zip(ordered[:-1], ordered[1:]):
            gap = above.cuboid.lo[2] - below.cuboid.hi[2]
            if abs(gap) > 1e-12:
                raise ValueError(
                    f"layers {below.name!r} and {above.name!r} are not contiguous "
                    f"(gap {gap:.3e} m)"
                )
        self.layers: List[Layer] = list(ordered)

    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def bounding_cuboid(self) -> Cuboid:
        bottom = self.layers[0].cuboid
        top = self.layers[-1].cuboid
        height = float(top.hi[2] - bottom.lo[2])
        return Cuboid(
            origin=tuple(bottom.origin),
            size=(bottom.size[0], bottom.size[1], height),
        )

    @property
    def z_boundaries(self) -> np.ndarray:
        """Layer interface z-coordinates, length ``n_layers + 1``."""
        lows = [layer.cuboid.lo[2] for layer in self.layers]
        return np.asarray(lows + [self.layers[-1].cuboid.hi[2]])

    # ------------------------------------------------------------------
    def layer_of(self, z: np.ndarray) -> np.ndarray:
        """Layer index containing each z (clipped to valid layers)."""
        z = np.asarray(z, dtype=np.float64)
        boundaries = self.z_boundaries
        index = np.searchsorted(boundaries, z, side="right") - 1
        return np.clip(index, 0, self.n_layers - 1)

    def layer_by_name(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}")

    @classmethod
    def from_thicknesses(
        cls,
        footprint_origin: Tuple[float, float],
        footprint_size: Tuple[float, float],
        thicknesses: Sequence[float],
        names: Optional[Sequence[str]] = None,
        z0: float = 0.0,
    ) -> "CuboidStack":
        """Build a stack from per-layer thicknesses, bottom-up."""
        names = list(names) if names else [f"layer{i}" for i in range(len(thicknesses))]
        if len(names) != len(thicknesses):
            raise ValueError("names/thicknesses length mismatch")
        layers = []
        z = z0
        for thickness, name in zip(thicknesses, names):
            cuboid = Cuboid(
                origin=(footprint_origin[0], footprint_origin[1], z),
                size=(footprint_size[0], footprint_size[1], thickness),
            )
            layers.append(Layer(cuboid, name))
            z += thickness
        return cls(layers)
