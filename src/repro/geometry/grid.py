"""Structured node grids on cuboids.

The paper's Experiment A uses a 21 x 21 x 11 node grid over the chip; both
the FDM reference solver and DeepOHeat evaluation reuse this class, so the
element-wise comparison in Table I happens on identical coordinates.

Node layout: ``flat_index = (ix * ny + iy) * nz + iz`` (z fastest), and all
reshapes use C order ``(nx, ny, nz)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

import numpy as np

from .cuboid import Cuboid, Face


@dataclass(frozen=True)
class StructuredGrid:
    """Uniform vertex grid with ``shape`` nodes per axis over ``cuboid``."""

    cuboid: Cuboid
    shape: Tuple[int, int, int]

    def __post_init__(self):
        if len(self.shape) != 3 or any(n < 2 for n in self.shape):
            raise ValueError(f"grid shape needs >= 2 nodes per axis, got {self.shape}")

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return int(np.prod(self.shape))

    @property
    def spacing(self) -> Tuple[float, float, float]:
        """Node spacing per axis (SI metres)."""
        return tuple(
            self.cuboid.size[axis] / (self.shape[axis] - 1) for axis in range(3)
        )

    @cached_property
    def axes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Node coordinate arrays per axis."""
        return tuple(
            np.linspace(self.cuboid.lo[axis], self.cuboid.hi[axis], self.shape[axis])
            for axis in range(3)
        )

    def points(self) -> np.ndarray:
        """All node coordinates, shape ``(n_nodes, 3)`` in flat-index order."""
        gx, gy, gz = np.meshgrid(*self.axes, indexing="ij")
        return np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])

    # ------------------------------------------------------------------
    def flat_index(self, ix, iy, iz) -> np.ndarray:
        """Flat node index from per-axis indices (broadcasting)."""
        nx, ny, nz = self.shape
        return (np.asarray(ix) * ny + np.asarray(iy)) * nz + np.asarray(iz)

    def unravel(self, flat) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        nx, ny, nz = self.shape
        flat = np.asarray(flat)
        return flat // (ny * nz), (flat // nz) % ny, flat % nz

    def to_array(self, field: np.ndarray) -> np.ndarray:
        """Reshape a flat nodal field to ``(nx, ny, nz)``."""
        return np.asarray(field).reshape(self.shape)

    def to_flat(self, array: np.ndarray) -> np.ndarray:
        return np.asarray(array).reshape(-1)

    # ------------------------------------------------------------------
    def face_mask(self, face: Face) -> np.ndarray:
        """Boolean mask (flat order) of nodes on ``face``."""
        index = np.zeros(self.shape, dtype=bool)
        selector = [slice(None)] * 3
        selector[face.axis] = -1 if face.is_max else 0
        index[tuple(selector)] = True
        return index.ravel()

    def face_indices(self, face: Face) -> np.ndarray:
        return np.flatnonzero(self.face_mask(face))

    def face_points(self, face: Face) -> np.ndarray:
        return self.points()[self.face_mask(face)]

    def face_shape(self, face: Face) -> Tuple[int, int]:
        a, b = face.tangent_axes
        return self.shape[a], self.shape[b]

    def boundary_mask(self) -> np.ndarray:
        mask = np.zeros(self.n_nodes, dtype=bool)
        for face in Face:
            mask |= self.face_mask(face)
        return mask

    def interior_mask(self) -> np.ndarray:
        return ~self.boundary_mask()

    def interior_points(self) -> np.ndarray:
        return self.points()[self.interior_mask()]

    # ------------------------------------------------------------------
    def refine(self, factor: int) -> "StructuredGrid":
        """Return a grid with ``factor``x the cells per axis (same cuboid).

        Used by the speedup bench to emulate FEM-resolution solves.
        """
        if factor < 1:
            raise ValueError("refinement factor must be >= 1")
        new_shape = tuple((n - 1) * factor + 1 for n in self.shape)
        return StructuredGrid(self.cuboid, new_shape)


def paper_grid_a() -> StructuredGrid:
    """The 21 x 21 x 11 mesh of Experiment A (4851 nodes)."""
    from .cuboid import paper_chip_a

    return StructuredGrid(paper_chip_a(), (21, 21, 11))
