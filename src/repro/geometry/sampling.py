"""Collocation-point samplers.

Experiment A evaluates on the fixed mesh; Experiment B "randomly draw[s] a
new set of coordinates from the simulation domain" every iteration.  Both
styles are provided, plus Latin-hypercube sampling for better space filling
in ablations.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from scipy.stats import qmc

from .cuboid import Cuboid, Face


def sample_interior(
    cuboid: Cuboid, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random points strictly inside the cuboid, shape (n, 3)."""
    u = rng.uniform(size=(n, 3))
    return cuboid.lo + u * (cuboid.hi - cuboid.lo)


def sample_interior_lhs(
    cuboid: Cuboid, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Latin-hypercube points inside the cuboid (scipy QMC engine)."""
    sampler = qmc.LatinHypercube(d=3, seed=rng)
    u = sampler.random(n)
    return cuboid.lo + u * (cuboid.hi - cuboid.lo)


def sample_face(
    cuboid: Cuboid, face: Face, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random points on one face, shape (n, 3)."""
    points = sample_interior(cuboid, n, rng)
    points[:, face.axis] = cuboid.face_coordinate(face)
    return points


def sample_boundary(
    cuboid: Cuboid, n_per_face: int, rng: np.random.Generator
) -> Dict[Face, np.ndarray]:
    """Random points on all six faces."""
    return {face: sample_face(cuboid, face, n_per_face, rng) for face in Face}


def sample_volume_and_faces(
    cuboid: Cuboid,
    n_interior: int,
    n_per_face: int,
    rng: np.random.Generator,
    latin_hypercube: bool = False,
) -> Dict[str, np.ndarray]:
    """Convenience bundle: interior plus per-face samples.

    Returns a dict with key ``"interior"`` and one key per face name.
    """
    interior_sampler = sample_interior_lhs if latin_hypercube else sample_interior
    out: Dict[str, np.ndarray] = {
        "interior": interior_sampler(cuboid, n_interior, rng)
    }
    for face in Face:
        out[face.name] = sample_face(cuboid, face, n_per_face, rng)
    return out


def stratified_interior(
    cuboid: Cuboid,
    n_per_axis: int,
    rng: Optional[np.random.Generator] = None,
    jitter: float = 0.0,
) -> np.ndarray:
    """Cell-centred regular points with optional uniform jitter.

    With ``jitter=0`` this is a deterministic interior lattice; jitter up to
    0.5 keeps each point inside its cell.
    """
    if not 0.0 <= jitter <= 0.5:
        raise ValueError("jitter must be within [0, 0.5]")
    centers = (np.arange(n_per_axis) + 0.5) / n_per_axis
    gx, gy, gz = np.meshgrid(centers, centers, centers, indexing="ij")
    u = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
    if jitter > 0.0:
        if rng is None:
            raise ValueError("jitter requires an rng")
        u = u + rng.uniform(-jitter, jitter, size=u.shape) / n_per_axis
    return cuboid.lo + u * (cuboid.hi - cuboid.lo)
